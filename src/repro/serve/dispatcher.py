"""Batch dispatcher: hands micro-batches to the engine off the event loop.

The engine's batch kernels are milliseconds of NumPy work — far too long
to run on the event loop thread that is concurrently accepting
connections and parsing frames.  The dispatcher owns a small worker
thread pool (one thread by default: the engine serialises its own batch
entry points anyway, and one in-flight batch keeps tail latency
predictable), runs ``batch_range_query_attributed`` there, and slices the
per-query results and stats back onto the per-client futures on the event
loop.

Failure semantics: an :class:`~repro.core.engine.EngineClosedError` (the
engine is being torn down under the server) resolves every future of the
batch with that typed error so connection handlers can answer
``shutting_down``; any other exception resolves them with the raw error
(answered as ``internal``).  Futures abandoned between flush and
completion (client disconnected mid-batch) are skipped — the batch result
of everyone else is unaffected.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.executors import MATERIALIZE
from repro.indexes.base import QueryStats
from repro.serve.coalescer import PendingQuery

__all__ = ["EngineDispatcher"]

#: One resolved query as the connection writer consumes it:
#: ``(row_ids_or_None, value_or_None, stats, server_meta)``.
_Resolved = Tuple[Optional[np.ndarray], Optional[float], QueryStats, dict]


class EngineDispatcher:
    """Runs coalesced batches on an engine in a worker thread.

    ``engine`` is anything with the
    ``batch_range_query_attributed(queries) -> (results, stats)`` surface
    — :class:`~repro.core.engine.ShardedCOAX` natively; a flat
    ``COAXIndex`` can be wrapped via ``ShardedCOAX.from_index``.  Serving
    the operator executors additionally needs the engine's
    ``batch_aggregate_attributed`` / ``topk_attributed`` /
    ``knn_attributed`` surface; a coalesced batch carries one executor
    kind end to end (the coalescer groups by executor key), so dispatch
    routes the whole batch through exactly one of those entry points.
    """

    def __init__(self, engine, *, max_workers: int = 1) -> None:
        self._engine = engine
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-dispatch"
        )
        self.batches = 0
        self.queries = 0
        self.inflight = 0

    @property
    def engine(self):
        """The engine batches are executed against."""
        return self._engine

    @property
    def busy(self) -> bool:
        """True while at least one batch is executing (or pool-queued).

        The coalescer uses this as the group-commit signal: a query that
        arrives while a batch is in flight cannot start any sooner by
        being dispatched alone, so queueing it is free — it rides in the
        batch flushed the instant the in-flight one completes.
        """
        return self.inflight > 0

    def close(self) -> None:
        """Shut the worker pool down, waiting for the in-flight batch."""
        self._executor.shutdown(wait=True)

    def _run(self, batch: List[PendingQuery]) -> List[_Resolved]:
        """Execute one executor-homogeneous batch; one resolved slot per entry.

        Routed by the batch's executor kind (the coalescer only groups
        compatible entries): materialising batches run the flat batch
        kernel; aggregate batches run the partial-accumulator scatter and
        answer scalars; top-k/kNN entries run the engine's per-query
        merge (their batch-compatibility key deliberately ignores the
        point/rectangle, so the loop lives here).  Per-query stats come
        from the engine's own ``*_attributed`` split — including the
        ``aggregates`` / ``knn_queries`` / ``rings_expanded`` counters —
        so served attribution matches direct engine calls exactly.
        """
        executor = batch[0].executor if batch else MATERIALIZE
        kind = getattr(executor, "kind", "materialize")
        resolved: List[_Resolved] = []
        if kind == "aggregate":
            values, stats = self._engine.batch_aggregate_attributed(
                [entry.query for entry in batch], executor
            )
            for value, query_stats in zip(values, stats):
                # ``.item()`` (NumPy scalar → Python scalar) keeps the wire
                # encoder numpy-free: json rejects np.int64/np.float64.
                resolved.append((None, value.item(), query_stats, {}))
        elif kind == "topk":
            for entry in batch:
                spec = entry.executor
                if spec.is_knn:
                    ids, query_stats = self._engine.knn_attributed(
                        spec.point, spec.k, metric=spec.metric
                    )
                else:
                    ids, query_stats = self._engine.topk_attributed(entry.query, spec)
                resolved.append((ids, None, query_stats, {}))
        else:
            results, stats = self._engine.batch_range_query_attributed(
                [entry.query for entry in batch]
            )
            for row_ids, query_stats in zip(results, stats):
                resolved.append((row_ids, None, query_stats, {}))
        return resolved

    async def dispatch(self, batch: List[PendingQuery]) -> None:
        """Execute one micro-batch and resolve its per-client futures.

        The engine call runs in the worker pool; the loop thread only
        does the slicing.  Every live future is resolved exactly once —
        with ``(row_ids, value, stats, server_meta)`` on success or with
        the engine's exception on failure.
        """
        if not batch:
            return
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        self.inflight += 1
        try:
            resolved = await loop.run_in_executor(self._executor, self._run, batch)
        # repro-lint: allow[typed-errors] thread-pool boundary: the engine's exception is re-homed onto every waiter's future, then typed at the protocol layer
        except Exception as exc:  # noqa: BLE001 - typed at the protocol layer
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        finally:
            self.inflight -= 1
        self.batches += 1
        self.queries += len(batch)
        n_batched = len(batch)
        for entry, (row_ids, value, query_stats, _) in zip(batch, resolved):
            if not entry.future.done():
                meta = {
                    "batched": n_batched,
                    "wait_us": round(max(started - entry.offered_at, 0.0) * 1e6)
                    if entry.offered_at
                    else 0,
                }
                entry.future.set_result((row_ids, value, query_stats, meta))

    async def dispatch_one(self, entry: PendingQuery) -> None:
        """Pass-through for the naive path: a batch of exactly one query."""
        await self.dispatch([entry])

    def run_direct(self, queries: Sequence) -> List[np.ndarray]:
        """Synchronous oracle helper: the same engine, no serving layer.

        Benchmarks verify every served result element-for-element against
        this direct call.
        """
        results, _ = self._engine.batch_range_query_attributed(list(queries))
        return results
