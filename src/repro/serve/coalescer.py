"""Adaptive query coalescing: the micro-batching state machine.

The engine's batch read path is 5–58x faster per query than scalar
execution, but a service receives queries one at a time from many
concurrent clients.  The coalescer closes that gap: single queries
accumulate into a micro-batch that is flushed to
``ShardedCOAX.batch_range_query_attributed`` when **either** the batch
reaches ``max_batch`` queries **or** an adaptive time window (bounded by
``max_window_s``, 1–5 ms territory) expires — whichever happens first.

The window adapts to the offered load instead of taxing every query with a
fixed delay:

* **Idle pass-through.**  When the queue is empty and the recent
  inter-arrival gap says no companion query is likely to arrive within the
  window, a lone query is flushed immediately — an unloaded server adds
  *zero* coalescing latency.
* **Group commit.**  Pass-through is suppressed while a batch is already
  executing downstream (the ``busy`` input to :meth:`QueryCoalescer.
  offer`): the lone query cannot start any sooner than the in-flight
  batch finishes, so queueing it costs nothing and it seeds the batch the
  server flushes on completion.  This is what breaks the closed-loop
  convoy where completions pace arrivals at the engine's service time
  and every query would otherwise look idle.
* **Hot shrink.**  Under load the window is sized to the *expected time to
  fill the batch* (EWMA inter-arrival gap × remaining slots, clamped to
  ``[min_window_s, max_window_s]``): the hotter the stream, the shorter
  the wait, because a batch fills on its own.  Waiting longer than the
  fill time can never help; waiting less only shrinks batches.

Admission control is a bounded queue: once ``max_queue`` queries are
waiting, :meth:`QueryCoalescer.offer` raises :class:`OverloadedError` and
the server fast-rejects with a typed ``overloaded`` response instead of
growing an unbounded backlog (clients get ``retry_after_ms`` — roughly one
window — as the backoff hint).  Disconnected clients are handled at flush
time: entries whose future was cancelled are dropped from the batch before
it reaches the engine.

The class is deliberately sans-IO — no sockets, no event loop, an
injectable clock — so the state machine is unit-testable in isolation; the
asyncio server wires ``offer``/``take_batch`` to timers and streams.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.data.executors import MATERIALIZE, Executor, executor_key

__all__ = [
    "FLUSH",
    "SCHEDULE",
    "QUEUED",
    "CoalescerConfig",
    "OverloadedError",
    "PendingQuery",
    "QueryCoalescer",
]

#: :meth:`QueryCoalescer.offer` outcomes: the caller must drain a batch now
#: (size trigger or idle pass-through) / must arm a flush timer for
#: :attr:`QueryCoalescer.deadline` / the entry joined an already-armed batch.
FLUSH = "flush"
SCHEDULE = "schedule"
QUEUED = "queued"


class OverloadedError(RuntimeError):
    """Admission control rejected an offer: the wait queue is full.

    Carries ``retry_after_s``, the server's backoff hint (about one flush
    window: by then the queue has drained at least one batch or the
    service is genuinely saturated).
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class CoalescerConfig:
    """Tuning knobs of the adaptive micro-batching policy."""

    #: Size trigger: flush as soon as this many queries wait.
    max_batch: int = 128
    #: Time trigger ceiling: no admitted query waits longer than this for
    #: its batch (seconds; the 1–5 ms regime trades microseconds of wait
    #: for the batch path's per-query speedup).
    max_window_s: float = 0.002
    #: Floor of the adaptive window, so a hot stream still aggregates a
    #: few arrivals instead of degenerating into per-query dispatch.
    min_window_s: float = 0.0002
    #: Pass a lone query straight through when the expected wait for a
    #: companion (the EWMA inter-arrival gap) exceeds this fraction of
    #: ``max_window_s`` — idle traffic then never waits at all.
    idle_gap_factor: float = 1.0
    #: Admission bound: offers beyond this many waiting queries raise
    #: :class:`OverloadedError` instead of queueing.
    max_queue: int = 4096
    #: Smoothing of the inter-arrival EWMA (higher reacts faster).
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_window_s <= 0:
            raise ValueError("max_window_s must be positive")
        if not 0 < self.min_window_s <= self.max_window_s:
            raise ValueError("min_window_s must be in (0, max_window_s]")
        if self.idle_gap_factor <= 0:
            raise ValueError("idle_gap_factor must be positive")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass
class PendingQuery:
    """One admitted query waiting for (or riding in) a micro-batch.

    ``future`` is resolved by the dispatcher with ``(row_ids, stats)`` —
    any object with the ``asyncio.Future`` surface works, which keeps the
    coalescer loop-agnostic.  A future already cancelled or resolved at
    flush time (client disconnected, deadline enforced upstream) drops the
    entry from the batch before the engine sees it.

    ``executor`` is the operator consumer the query runs under
    (:data:`~repro.data.executors.MATERIALIZE` by default); queries only
    share a micro-batch with compatible executors (equal
    :func:`~repro.data.executors.executor_key`), because one dispatched
    batch runs a single executor spec end to end.
    """

    query: Any
    future: Any
    request_id: Any = None
    offered_at: float = 0.0
    executor: Executor = MATERIALIZE
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def abandoned(self) -> bool:
        """True when serving this entry can no longer reach its client."""
        return self.future.cancelled() or self.future.done()


class QueryCoalescer:
    """Sans-IO adaptive micro-batching state machine (see module docs).

    Not thread-safe by design: all transitions happen on one event loop
    (or one test thread).  ``clock`` is injectable so tests drive time
    explicitly.
    """

    def __init__(
        self,
        config: Optional[CoalescerConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else CoalescerConfig()
        self._clock = clock
        self._queue: Deque[PendingQuery] = deque()
        self._deadline: Optional[float] = None
        self._gap_ewma: Optional[float] = None
        self._last_arrival: Optional[float] = None
        # Serving counters, exposed via :meth:`snapshot`.
        self.offered = 0
        self.rejected = 0
        self.passthrough = 0
        self.batches = 0
        self.dispatched = 0
        self.dropped_abandoned = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_waiting(self) -> int:
        """Queries admitted but not yet taken into a batch."""
        return len(self._queue)

    @property
    def deadline(self) -> Optional[float]:
        """Clock time of the armed time trigger (``None`` when idle)."""
        return self._deadline

    @property
    def gap_ewma(self) -> Optional[float]:
        """Smoothed inter-arrival gap in seconds (``None`` before two offers)."""
        return self._gap_ewma

    def snapshot(self) -> Dict[str, float]:
        """Serving counters for stats endpoints and benchmark reports."""
        return {
            "offered": self.offered,
            "rejected": self.rejected,
            "passthrough": self.passthrough,
            "batches": self.batches,
            "dispatched": self.dispatched,
            "dropped_abandoned": self.dropped_abandoned,
            "waiting": len(self._queue),
            "mean_batch": self.dispatched / self.batches if self.batches else 0.0,
        }

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def offer(
        self,
        entry: PendingQuery,
        now: Optional[float] = None,
        *,
        busy: bool = False,
    ) -> str:
        """Admit one query; returns :data:`FLUSH`/:data:`SCHEDULE`/:data:`QUEUED`.

        Raises :class:`OverloadedError` without queueing when admission
        control is at capacity.  On :data:`FLUSH` the caller must drain
        via :meth:`take_batch` immediately; on :data:`SCHEDULE` it must
        arm a timer for :attr:`deadline` (there was no timer before); on
        :data:`QUEUED` an earlier offer's timer already covers this entry.

        ``busy`` is the group-commit signal: pass ``True`` while a batch
        is already executing downstream.  It suppresses idle pass-through
        — a lone query cannot start any sooner than the in-flight batch
        finishes, so queueing it is free and it seeds the next batch.
        Without this, a closed-loop stream whose service time exceeds
        ``max_window_s`` locks into a convoy of batches of one: each
        completion releases exactly one client, so arrivals stay spaced
        at the service time and always look idle.
        """
        now = self._clock() if now is None else now
        if len(self._queue) >= self.config.max_queue:
            self.rejected += 1
            raise OverloadedError(
                f"coalescer queue is full ({self.config.max_queue} waiting)",
                retry_after_s=self._window(),
            )
        self._observe_arrival(now)
        entry.offered_at = now
        self._queue.append(entry)
        self.offered += 1
        if len(self._queue) >= self.config.max_batch:
            return FLUSH
        if len(self._queue) == 1:
            if not busy and self._expect_idle():
                self.passthrough += 1
                return FLUSH
            self._deadline = now + self._window()
            return SCHEDULE
        return QUEUED

    def due(self, now: Optional[float] = None) -> bool:
        """True when the time trigger has expired and a batch is waiting."""
        if self._deadline is None or not self._queue:
            return False
        now = self._clock() if now is None else now
        return now >= self._deadline

    def take_batch(self, now: Optional[float] = None) -> List[PendingQuery]:
        """Drain up to ``max_batch`` executor-compatible live entries.

        Abandoned entries (cancelled/resolved futures — disconnected
        clients) are dropped here, *before* the engine runs the batch.
        The batch is the FIFO prefix of entries sharing the head's
        :func:`~repro.data.executors.executor_key` — a dispatched batch
        runs one executor spec end to end, so a stream mixing ops splits
        at each op boundary (order is preserved; the next op group rides
        the immediately re-armed deadline below).  If a backlog remains —
        more than one batch was waiting, or a mixed stream split — the
        deadline stays armed at "now": the caller's flush loop keeps
        draining until the queue is empty, which is what bounds the queue
        during overload recovery.
        """
        now = self._clock() if now is None else now
        batch: List[PendingQuery] = []
        batch_key = None
        while self._queue and len(batch) < self.config.max_batch:
            entry = self._queue[0]
            if entry.abandoned:
                self._queue.popleft()
                self.dropped_abandoned += 1
                continue
            key = executor_key(entry.executor)
            if batch_key is None:
                batch_key = key
            elif key != batch_key:
                break
            self._queue.popleft()
            batch.append(entry)
        if self._queue:
            self._deadline = now
        else:
            self._deadline = None
        if batch:
            self.batches += 1
            self.dispatched += len(batch)
        return batch

    # ------------------------------------------------------------------
    # Adaptive window policy
    # ------------------------------------------------------------------
    def _observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 0.0)
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                alpha = self.config.ewma_alpha
                self._gap_ewma = alpha * gap + (1 - alpha) * self._gap_ewma
        self._last_arrival = now

    def _window(self) -> float:
        """Current flush window: expected batch fill time, clamped.

        With no arrival history the full ``max_window_s`` applies (first
        queries of a burst err toward batching); once the EWMA tracks the
        stream, the window shrinks to roughly how long filling the
        remaining batch slots will take — a hot queue flushes early, a
        lukewarm one waits no longer than the ceiling.
        """
        if self._gap_ewma is None:
            return self.config.max_window_s
        remaining = max(self.config.max_batch - len(self._queue), 1)
        expected_fill = self._gap_ewma * remaining
        return float(
            min(self.config.max_window_s, max(self.config.min_window_s, expected_fill))
        )

    def _expect_idle(self) -> bool:
        """Lone query and no companion expected inside the window → pass through."""
        if self._gap_ewma is None:
            # No history yet: first query ever observed should not pay a
            # speculative wait.
            return True
        return self._gap_ewma > self.config.max_window_s * self.config.idle_gap_factor
