"""Asyncio client for the serving front end.

One :class:`ServeClient` owns one TCP connection and may pipeline any
number of requests on it: :meth:`submit` writes a frame and returns a
future, a background reader task matches response frames to futures by
request id.  :meth:`query` is the convenience submit-and-await form.

Server-side error responses surface as typed exceptions so callers can
branch on the condition instead of parsing strings —
:class:`ServerOverloadedError` (admission control fast-reject, carries
``retry_after_ms``), :class:`ServerShuttingDownError`,
:class:`RemoteBadRequestError`, :class:`RemoteInternalError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.data.executors import MATERIALIZE, Aggregate, Executor, TopK
from repro.data.predicates import Rectangle
from repro.serve.protocol import (
    ProtocolError,
    encode_frame,
    read_frame,
    request_to_wire,
    split_response,
)

__all__ = [
    "ServeClient",
    "ServeResult",
    "ServerError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "RemoteBadRequestError",
    "RemoteInternalError",
]


class ServerError(RuntimeError):
    """Base of all typed errors a server response can carry."""


class ServerOverloadedError(ServerError):
    """Admission control rejected the query; retry after ``retry_after_ms``."""

    def __init__(self, message: str, retry_after_ms: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServerShuttingDownError(ServerError):
    """The engine behind the server has been shut down."""


class RemoteBadRequestError(ServerError):
    """The server could not parse the request."""


class RemoteInternalError(ServerError):
    """The query failed inside the engine."""


_ERROR_TYPES = {
    "shutting_down": ServerShuttingDownError,
    "bad_request": RemoteBadRequestError,
    "internal": RemoteInternalError,
}


@dataclass
class ServeResult:
    """One successful served query: ids (or an aggregate's scalar ``value``
    — ``None`` for MIN/MAX/AVG over an empty match set) plus optional
    serving metadata."""

    row_ids: np.ndarray
    value: Optional[float] = None
    stats: Optional[Dict[str, int]] = None
    server: Dict[str, Any] = field(default_factory=dict)


class ServeClient:
    """One pipelining connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def submit(
        self, query: Rectangle, executor: Executor = MATERIALIZE
    ) -> "asyncio.Future[ServeResult]":
        """Send one query without waiting; the returned future resolves to
        its :class:`ServeResult` (or a typed :class:`ServerError`)."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        frame = dict(request_to_wire(query, executor))
        frame["id"] = request_id
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return future

    async def query(
        self, query: Rectangle, executor: Executor = MATERIALIZE
    ) -> ServeResult:
        """Submit one query (under any executor) and wait for its result."""
        return await (await self.submit(query, executor))

    async def aggregate(self, query: Rectangle, spec: Aggregate) -> Optional[float]:
        """COUNT/SUM/MIN/MAX/AVG over the rectangle; ``None`` when undefined."""
        return (await self.query(query, spec)).value

    async def knn(
        self, point: Dict[str, float], k: int, *, metric: str = "l2"
    ) -> np.ndarray:
        """Row ids of the k nearest live rows around ``point``."""
        result = await self.query(
            Rectangle.unconstrained(), TopK(k, point=dict(point), metric=metric)
        )
        return result.row_ids

    async def topk(self, query: Rectangle, spec: TopK) -> np.ndarray:
        """Row ids of the k smallest/largest rows by a column in the rectangle."""
        return (await self.query(query, spec)).row_ids

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                request_id, ok, body = split_response(message)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue
                if ok:
                    future.set_result(
                        ServeResult(
                            row_ids=np.asarray(
                                body.get("row_ids", []), dtype=np.int64
                            ),
                            value=body.get("value"),
                            stats=body.get("stats"),
                            server=body.get("server", {}),
                        )
                    )
                else:
                    future.set_exception(_error_from_body(body))
        except asyncio.CancelledError:
            error = ConnectionError("client closed while requests were pending")
        except (
            ProtocolError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def close(self) -> None:
        """Close the connection; unanswered futures get ``ConnectionError``."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _error_from_body(body: Dict[str, Any]) -> ServerError:
    error = body.get("error") or {}
    code = error.get("code")
    message = error.get("message", "server error")
    if code == "overloaded":
        return ServerOverloadedError(message, error.get("retry_after_ms"))
    return _ERROR_TYPES.get(code, RemoteInternalError)(message)
