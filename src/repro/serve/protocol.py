"""Wire protocol of the serving front end: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol debuggable from any language
(``nc`` plus a hex dump is a working client); the length prefix keeps
framing trivial and lets the server reject oversized frames *before*
parsing them.  Infinite rectangle bounds — JSON has no ``inf`` — travel as
``null`` (``null`` low = unbounded below, ``null`` high = unbounded above).

Requests
--------

Every request carries an ``op`` selecting the executor the query runs
under; ``range``/``point`` materialise row ids (the original protocol),
``aggregate``/``topk``/``knn`` dispatch to the engine's operator
executors::

    {"id": 7, "op": "range", "bounds": {"Distance": [500, 800], "AirTime": [60, null]}}
    {"id": 8, "op": "point", "point": {"Distance": 512.0, "AirTime": 64.0}}
    {"id": 9, "op": "aggregate", "agg": "sum", "column": "AirTime",
     "bounds": {"Distance": [500, 800]}}
    {"id": 10, "op": "topk", "k": 5, "column": "AirTime", "largest": true,
     "bounds": {"Distance": [500, 800]}}
    {"id": 11, "op": "knn", "k": 8, "metric": "l2",
     "point": {"Distance": 512.0, "AirTime": 64.0}}

An ``op`` the server does not know — e.g. a newer client talking to an
older server, or vice versa — is answered with a typed ``bad_request``
response, never a dropped connection: unknown ops are a parse error of
the request *body*, so framing stays trusted and the connection lives on.

``id`` is chosen by the client and echoed verbatim in the response, so
clients may pipeline any number of requests per connection and match
responses by id (the server always answers in request order per
connection, but ids make the pairing explicit and survive client-side
reordering).

Responses
---------

::

    {"id": 7, "ok": true, "row_ids": [3, 19], "stats": {...}, "server": {...}}
    {"id": 9, "ok": true, "value": 6021.5, "stats": {...}, "server": {...}}
    {"id": 7, "ok": false, "error": {"code": "overloaded", "message": "...",
                                     "retry_after_ms": 2}}

Materialising and top-k/kNN ops answer with ``row_ids``; aggregates
answer with ``value`` (``null`` for MIN/MAX/AVG over an empty match set —
JSON has no NaN).  ``stats`` carries the per-query
:class:`~repro.indexes.base.QueryStats` attribution (coalescing server
only); ``server`` carries serving-side metadata (batch size the query
rode in, queue wait).  Error codes are the :data:`ERROR_CODES` constants
— ``overloaded`` is the typed fast-reject of admission control and
carries ``retry_after_ms``.
"""

from __future__ import annotations

import asyncio
import json
import math
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.data.executors import (
    AGGREGATE_OPS,
    MATERIALIZE,
    METRIC_CHOICES,
    Aggregate,
    Executor,
    TopK,
)
from repro.data.predicates import Interval, Rectangle

__all__ = [
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "query_to_wire",
    "query_from_wire",
    "request_to_wire",
    "request_from_wire",
    "ok_response",
    "error_response",
    "split_response",
]

#: Hard upper bound on a frame's payload size; a length prefix beyond this
#: closes the connection instead of allocating attacker-controlled buffers.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Typed error codes a response may carry.
ERROR_CODES = ("overloaded", "shutting_down", "bad_request", "internal")

_LENGTH = struct.Struct(">I")


class ProtocolError(ValueError):
    """A frame that cannot be parsed into a valid request/response."""


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialise one message as a length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF before a length prefix.

    A connection that dies mid-frame raises ``IncompleteReadError`` (the
    caller drops the connection); an oversized or non-JSON frame raises
    :class:`ProtocolError` — the peer is misbehaving and framing can no
    longer be trusted, so callers close the connection rather than answer.
    """
    prefix = await reader.read(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        prefix += await reader.readexactly(_LENGTH.size - len(prefix))
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = await reader.readexactly(length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def _bound_to_wire(value: float) -> Optional[float]:
    return None if math.isinf(value) else float(value)


def _bound_from_wire(value: Any, default: float) -> float:
    if value is None:
        return default
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"bound must be a number or null, got {value!r}")
    if math.isnan(value):
        raise ProtocolError("bound must not be NaN")
    return float(value)


def query_to_wire(query: Rectangle) -> Dict[str, Any]:
    """Request body of a range query over ``query`` (without the id)."""
    return {
        "op": "range",
        "bounds": {
            name: [_bound_to_wire(interval.low), _bound_to_wire(interval.high)]
            for name, interval in query.items()
        },
    }


def _point_from_wire(message: Mapping[str, Any]) -> Dict[str, float]:
    point = message.get("point")
    if not isinstance(point, dict) or not point:
        raise ProtocolError("point query needs a non-empty 'point' object")
    values: Dict[str, float] = {}
    for name, value in point.items():
        if value is None:
            raise ProtocolError(f"point value for {name!r} must not be null")
        values[str(name)] = _bound_from_wire(value, math.nan)
    return values


def _bounds_from_wire(message: Mapping[str, Any]) -> Rectangle:
    bounds = message.get("bounds")
    if not isinstance(bounds, dict):
        raise ProtocolError("range query needs a 'bounds' object")
    intervals: Dict[str, Interval] = {}
    for name, pair in bounds.items():
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError(f"bounds for {name!r} must be a [low, high] pair")
        intervals[str(name)] = Interval(
            _bound_from_wire(pair[0], -math.inf), _bound_from_wire(pair[1], math.inf)
        )
    return Rectangle(intervals)


def _k_from_wire(message: Mapping[str, Any]) -> int:
    k = message.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError(f"'k' must be a positive integer, got {k!r}")
    return k


def query_from_wire(message: Mapping[str, Any]) -> Rectangle:
    """Parse a materialising request body into its :class:`Rectangle`.

    The pre-executor entry point, kept for old callers that only speak
    ``range``/``point``; new code uses :func:`request_from_wire`, which
    also yields the executor.  Raises :class:`ProtocolError` on any
    malformed shape — unknown op, non-list bounds, NaN values — so the
    server can answer a typed ``bad_request`` instead of crashing a
    dispatch batch.
    """
    op = message.get("op")
    if op == "point":
        return Rectangle.from_point(_point_from_wire(message))
    if op != "range":
        raise ProtocolError(f"unknown op {op!r}; expected 'range' or 'point'")
    return _bounds_from_wire(message)


def request_from_wire(message: Mapping[str, Any]) -> Tuple[Rectangle, Executor]:
    """Parse a request body into ``(query, executor)`` for dispatch.

    ``range``/``point`` map to the materialising executor; ``aggregate``,
    ``topk`` and ``knn`` map to the corresponding operator executor (a
    kNN request's rectangle is unconstrained — the point lives in the
    spec).  Any other ``op`` — including ones a future protocol revision
    may add — raises :class:`ProtocolError`, which the server answers as
    a typed ``bad_request``.
    """
    op = message.get("op")
    if op in ("range", "point"):
        return query_from_wire(message), MATERIALIZE
    if op == "aggregate":
        agg = message.get("agg")
        if agg not in AGGREGATE_OPS:
            raise ProtocolError(
                f"'agg' must be one of {AGGREGATE_OPS}, got {agg!r}"
            )
        column = message.get("column")
        if column is not None and not isinstance(column, str):
            raise ProtocolError(f"'column' must be a string, got {column!r}")
        try:
            spec = Aggregate(str(agg), column)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        return _bounds_from_wire(message), spec
    if op == "topk":
        column = message.get("column")
        if not isinstance(column, str):
            raise ProtocolError(f"topk needs a string 'column', got {column!r}")
        largest = message.get("largest", False)
        if not isinstance(largest, bool):
            raise ProtocolError(f"'largest' must be a boolean, got {largest!r}")
        spec = TopK(_k_from_wire(message), column=column, largest=largest)
        return _bounds_from_wire(message), spec
    if op == "knn":
        metric = message.get("metric", "l2")
        if metric not in METRIC_CHOICES:
            raise ProtocolError(
                f"'metric' must be one of {METRIC_CHOICES}, got {metric!r}"
            )
        spec = TopK(
            _k_from_wire(message), point=_point_from_wire(message), metric=str(metric)
        )
        return Rectangle.unconstrained(), spec
    raise ProtocolError(
        f"unknown op {op!r}; expected one of "
        "'range', 'point', 'aggregate', 'topk', 'knn'"
    )


def request_to_wire(query: Rectangle, executor: Executor = MATERIALIZE) -> Dict[str, Any]:
    """Request body (without the id) running ``query`` under ``executor``."""
    kind = getattr(executor, "kind", "materialize")
    if kind == "aggregate":
        body = dict(query_to_wire(query))
        body["op"] = "aggregate"
        body["agg"] = executor.op
        if executor.column is not None:
            body["column"] = executor.column
        return body
    if kind == "topk":
        if executor.is_knn:
            return {
                "op": "knn",
                "k": int(executor.k),
                "metric": executor.metric,
                "point": {
                    name: float(value) for name, value in executor.point.items()
                },
            }
        body = dict(query_to_wire(query))
        body["op"] = "topk"
        body["k"] = int(executor.k)
        body["column"] = executor.column
        body["largest"] = bool(executor.largest)
        return body
    return query_to_wire(query)


def ok_response(
    request_id: Any,
    row_ids=None,
    *,
    value: Optional[float] = None,
    stats: Optional[Mapping[str, int]] = None,
    server: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Success response carrying the result ids — or, for an aggregate
    op, its scalar ``value`` — plus optional metadata.

    A NaN aggregate (MIN/MAX/AVG over an empty match set) travels as
    ``null``: JSON has no NaN, and Python's permissive encoder would emit
    a literal ``NaN`` token other parsers reject.
    """
    payload: Dict[str, Any] = {"id": request_id, "ok": True}
    if row_ids is not None:
        payload["row_ids"] = [int(row_id) for row_id in row_ids]
    else:
        payload["value"] = None if value is None or math.isnan(value) else value
    if stats is not None:
        payload["stats"] = dict(stats)
    if server is not None:
        payload["server"] = dict(server)
    return payload


def error_response(
    request_id: Any,
    code: str,
    message: str,
    *,
    retry_after_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Typed error response (``code`` must be one of :data:`ERROR_CODES`)."""
    if code not in ERROR_CODES:
        raise ValueError(f"error code must be one of {ERROR_CODES}, got {code!r}")
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = float(retry_after_ms)
    return {"id": request_id, "ok": False, "error": error}


def split_response(
    message: Mapping[str, Any],
) -> Tuple[Any, bool, Dict[str, Any]]:
    """``(id, ok, body)`` of a response frame; raises on malformed shapes."""
    if "ok" not in message:
        raise ProtocolError("response frame is missing 'ok'")
    ok = bool(message["ok"])
    body = dict(message)
    return message.get("id"), ok, body
