"""Serving front end: asyncio TCP server with adaptive query coalescing.

The engine's batch read path amortises planning, translation and merge
across queries, but network clients send queries one at a time.  This
package bridges the two: a TCP server (length-prefixed JSON protocol)
funnels concurrent single queries through an adaptive micro-batching
coalescer into the engine's batch kernels, with admission control and
typed backpressure.  See DESIGN.md §11 for the architecture.

Layering (each module usable and testable without the ones above it):

* :mod:`repro.serve.protocol` — wire format, no IO beyond stream reads.
* :mod:`repro.serve.coalescer` — sans-IO adaptive batching state machine.
* :mod:`repro.serve.dispatcher` — event-loop ↔ engine-thread handoff.
* :mod:`repro.serve.server` — asyncio servers (coalescing + naive baseline).
* :mod:`repro.serve.client` — pipelining client with typed errors.
"""

from repro.serve.client import (
    RemoteBadRequestError,
    RemoteInternalError,
    ServeClient,
    ServeResult,
    ServerError,
    ServerOverloadedError,
    ServerShuttingDownError,
)
from repro.serve.coalescer import (
    CoalescerConfig,
    OverloadedError,
    PendingQuery,
    QueryCoalescer,
)
from repro.serve.dispatcher import EngineDispatcher
from repro.serve.protocol import ProtocolError
from repro.serve.server import (
    CoalescingQueryServer,
    NaiveQueryServer,
    QueryServer,
    ServerConfig,
    ServerNotStartedError,
)

__all__ = [
    "CoalescerConfig",
    "CoalescingQueryServer",
    "EngineDispatcher",
    "NaiveQueryServer",
    "OverloadedError",
    "PendingQuery",
    "ProtocolError",
    "QueryCoalescer",
    "QueryServer",
    "RemoteBadRequestError",
    "RemoteInternalError",
    "ServeClient",
    "ServeResult",
    "ServerConfig",
    "ServerError",
    "ServerNotStartedError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
]
