"""Asyncio TCP serving front end over the sharded engine.

Two servers share one connection/protocol layer and differ only in how an
admitted query reaches the engine:

* :class:`CoalescingQueryServer` — the production front end.  Queries
  from all connections flow into one :class:`~repro.serve.coalescer.
  QueryCoalescer`; micro-batches are flushed (size trigger, adaptive
  time trigger, or group commit — the instant an in-flight batch
  completes) to the :class:`~repro.serve.dispatcher.EngineDispatcher`,
  which runs them on ``batch_range_query_attributed`` in a worker thread
  and resolves each client's future with its slice of the flat results
  plus per-query stats.
* :class:`NaiveQueryServer` — the one-query-at-a-time baseline: identical
  protocol, identical dispatcher, identical worker-thread handoff, but
  every request is its own batch of one.  Benchmarks measure exactly the
  coalescing delta.

Connections may pipeline requests; responses are written in request order
per connection (a per-connection writer task awaits each future in turn,
and ``drain()`` applies TCP backpressure to slow readers).  Admission
control rejections, engine shutdown and malformed requests are answered
with the typed error responses of :mod:`repro.serve.protocol`; a client
that disconnects simply gets its outstanding futures cancelled, which
drops its queries from any not-yet-dispatched batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.engine import EngineClosedError
from repro.indexes.base import QueryStats
from repro.serve.coalescer import (
    FLUSH,
    SCHEDULE,
    CoalescerConfig,
    OverloadedError,
    PendingQuery,
    QueryCoalescer,
)
from repro.serve.dispatcher import EngineDispatcher
from repro.serve.protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    request_from_wire,
)

__all__ = [
    "ServerConfig",
    "ServerNotStartedError",
    "QueryServer",
    "CoalescingQueryServer",
    "NaiveQueryServer",
    "stats_to_wire",
]


class ServerNotStartedError(RuntimeError):
    """A lifecycle-dependent attribute was read before ``start()``."""


def stats_to_wire(stats: Optional[QueryStats]) -> Optional[Dict[str, int]]:
    """Per-query stats attribution as the flat dict the protocol carries."""
    if stats is None:
        return None
    return {
        "rows_examined": stats.rows_examined,
        "rows_matched": stats.rows_matched,
        "cells_visited": stats.cells_visited,
        "nodes_visited": stats.nodes_visited,
        "shards_pruned": stats.shards_pruned,
        "aggregates": stats.aggregates,
        "knn_queries": stats.knn_queries,
        "rings_expanded": stats.rings_expanded,
    }


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving front end (both server flavours)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; the bound port is ``server.port``.
    port: int = 0
    #: Micro-batching policy (coalescing server only).
    coalescer: CoalescerConfig = field(default_factory=CoalescerConfig)
    #: Dispatcher worker threads.  One is the sweet spot: the engine
    #: serialises concurrent batch calls anyway and a single in-flight
    #: batch keeps tail latency predictable.
    dispatch_workers: int = 1
    #: Listen backlog; thousands of clients connecting in bursts overflow
    #: the asyncio default of 100 (the kernel may clamp to ``somaxconn``).
    backlog: int = 1024


class QueryServer:
    """Shared connection/protocol layer; subclasses route admitted queries."""

    def __init__(self, engine, *, config: Optional[ServerConfig] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.dispatcher = EngineDispatcher(
            engine, max_workers=self.config.dispatch_workers
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._stopping = False
        self.connections_accepted = 0
        self.requests = 0
        self.bad_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind and start accepting connections; returns ``self``."""
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            backlog=self.config.backlog,
        )
        return self

    @property
    def port(self) -> int:
        """The actually bound TCP port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ServerNotStartedError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drop connections, release the dispatcher.

        In-flight engine batches finish (the dispatcher pool shuts down
        with ``wait=True``); queries still waiting in a queue are answered
        ``shutting_down`` through their cancelled futures.  The engine
        itself is *not* shut down — it belongs to the caller.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drain_pending()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(None, self.dispatcher.close)

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _drain_pending(self) -> None:
        """Subclass hook: fail queries still queued at stop time."""

    def snapshot(self) -> Dict[str, float]:
        """Serving counters (extended by subclasses).

        Engine-side pruning work (``shards_pruned`` / ``rows_examined``)
        and — when the engine runs workload-adaptive layout — the layout
        epoch and sketch depth ride along, so a serving dashboard can see
        pruning efficiency and re-layout activity without reaching into
        the engine.
        """
        counters = {
            "connections": self.connections_accepted,
            "requests": self.requests,
            "bad_requests": self.bad_requests,
            "batches": self.dispatcher.batches,
            "dispatched": self.dispatcher.queries,
        }
        engine = self.dispatcher.engine
        stats = getattr(engine, "stats", None)
        if stats is not None:
            counters["shards_pruned"] = stats.shards_pruned
            counters["rows_examined"] = stats.rows_examined
        layout = getattr(engine, "layout", None)
        if layout is not None:
            counters["layout_epoch"] = layout.epoch
            counters["layout_observed"] = layout.observed
        return counters

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read/admit loop plus an in-order response writer."""
        loop = asyncio.get_running_loop()
        responses: asyncio.Queue = asyncio.Queue()
        outstanding: Set[asyncio.Future] = set()
        writer_task = loop.create_task(self._write_responses(writer, responses))
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ProtocolError, asyncio.IncompleteReadError, ConnectionError):
                    break
                if message is None:
                    break
                self.requests += 1
                request_id = message.get("id")
                future: asyncio.Future = loop.create_future()
                outstanding.add(future)
                future.add_done_callback(outstanding.discard)
                try:
                    query, executor = request_from_wire(message)
                except ProtocolError as exc:
                    self.bad_requests += 1
                    future.set_exception(ProtocolError(str(exc)))
                else:
                    entry = PendingQuery(
                        query=query,
                        future=future,
                        request_id=request_id,
                        executor=executor,
                    )
                    if self._stopping:
                        future.set_exception(EngineClosedError("server is stopping"))
                    else:
                        self._admit(entry)
                await responses.put((request_id, future))
        finally:
            await responses.put(None)
            # Cancelling the futures (not the writer) lets already-computed
            # responses flush while queued-not-dispatched queries drop out
            # of their batches.
            for future in list(outstanding):
                if not future.done():
                    future.cancel()
            try:
                await writer_task
            except asyncio.CancelledError:  # pragma: no cover - stop() path
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _write_responses(
        self, writer: asyncio.StreamWriter, responses: asyncio.Queue
    ) -> None:
        """Await each request's future in order and write its response."""
        while True:
            item = await responses.get()
            if item is None:
                return
            request_id, future = item
            try:
                row_ids, value, stats, server_meta = await future
                payload = ok_response(
                    request_id,
                    row_ids,
                    value=value,
                    stats=stats_to_wire(stats),
                    server=server_meta,
                )
            except asyncio.CancelledError:
                # Connection is going away; nothing to write to.
                return
            except OverloadedError as exc:
                payload = error_response(
                    request_id,
                    "overloaded",
                    str(exc),
                    retry_after_ms=exc.retry_after_s * 1e3,
                )
            except EngineClosedError as exc:
                payload = error_response(request_id, "shutting_down", str(exc))
            except ProtocolError as exc:
                payload = error_response(request_id, "bad_request", str(exc))
            # repro-lint: allow[typed-errors] protocol boundary: unexpected failures are translated to a typed 'internal' wire response, never swallowed
            except Exception as exc:  # noqa: BLE001 - typed onto the wire
                payload = error_response(request_id, "internal", str(exc))
            try:
                writer.write(encode_frame(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                return

    # ------------------------------------------------------------------
    # Admission — subclass responsibility
    # ------------------------------------------------------------------
    def _admit(self, entry: PendingQuery) -> None:
        raise NotImplementedError


class NaiveQueryServer(QueryServer):
    """Baseline: every admitted query is dispatched as a batch of one."""

    def _admit(self, entry: PendingQuery) -> None:
        asyncio.ensure_future(self.dispatcher.dispatch([entry]))


class CoalescingQueryServer(QueryServer):
    """Adaptive micro-batching front end (see the module docstring)."""

    def __init__(self, engine, *, config: Optional[ServerConfig] = None) -> None:
        super().__init__(engine, config=config)
        self.coalescer = QueryCoalescer(self.config.coalescer)
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    def _admit(self, entry: PendingQuery) -> None:
        try:
            action = self.coalescer.offer(entry, busy=self.dispatcher.busy)
        except OverloadedError as exc:
            # Fast reject: the client hears ``overloaded`` + retry hint
            # without the query ever touching a queue or the engine.
            entry.future.set_exception(exc)
            return
        if action == FLUSH:
            self._flush_now()
        elif action == SCHEDULE:
            self._arm_timer()

    # ------------------------------------------------------------------
    # Flush machinery
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        deadline = self.coalescer.deadline
        if deadline is None:
            return
        if self._flush_handle is not None:
            self._flush_handle.cancel()
        delay = max(deadline - time.monotonic(), 0.0)
        self._flush_handle = asyncio.get_running_loop().call_later(
            delay, self._on_timer
        )

    def _on_timer(self) -> None:
        self._flush_handle = None
        if self.coalescer.due():
            self._flush_now()
        elif self.coalescer.deadline is not None:  # pragma: no cover - re-arm race
            self._arm_timer()

    def _flush_now(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch = self.coalescer.take_batch()
        if batch:
            task = asyncio.ensure_future(self.dispatcher.dispatch(batch))
            task.add_done_callback(self._after_dispatch)
        if self.coalescer.n_waiting:
            # Backlog beyond one batch: keep draining on the next tick so
            # overload recovery is bounded by dispatch, not by timers.
            self._arm_timer()

    def _after_dispatch(self, task: "asyncio.Future") -> None:
        """Group commit: flush whatever queued while the batch executed.

        Completion — not a timer — is the natural flush edge under load:
        every query that arrived during the batch has already waited the
        engine's service time, so dispatching them together immediately
        adds no latency and maximises the next batch.
        """
        if not task.cancelled():
            task.exception()  # dispatch() types errors onto the futures
        if not self._stopping and self.coalescer.n_waiting:
            self._flush_now()

    def _drain_pending(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for entry in self.coalescer.take_batch():
            if not entry.future.done():
                entry.future.set_exception(
                    EngineClosedError("server stopped before the query was dispatched")
                )

    def snapshot(self) -> Dict[str, float]:
        merged = super().snapshot()
        merged.update(
            {f"coalescer_{key}": value for key, value in self.coalescer.snapshot().items()}
        )
        return merged
