"""COAX: Correlation-Aware Indexing — reproduction library.

A from-scratch Python implementation of COAX (Hadian, Ghaffari, Wang,
Heinis): a multidimensional primary index that learns soft functional
dependencies between attributes, indexes only one predictor attribute per
correlated group, translates query constraints on the predicted attributes
into constraints on the indexed ones, and keeps the records violating the
learned dependency in a small conventional outlier index.

Quickstart::

    from repro import COAXIndex, Rectangle, Interval, generate_airline_dataset

    table, _ = generate_airline_dataset()
    index = COAXIndex(table)
    query = Rectangle({"Distance": Interval(500, 800), "AirTime": Interval(60, 120)})
    row_ids = index.range_query(query)

See DESIGN.md (repository root) for the architecture: the layer inventory,
the query pipeline, and the columnar delta-store update subsystem.
"""

from repro.data import (
    MATERIALIZE,
    Aggregate,
    Interval,
    MaterializeIds,
    Rectangle,
    Schema,
    Table,
    TopK,
    AirlineConfig,
    OSMConfig,
    generate_airline_dataset,
    generate_osm_dataset,
    generate_knn_queries,
    generate_point_queries,
    generate_selectivity_queries,
    WorkloadConfig,
)
from repro.fd import (
    BayesianLinearRegression,
    DetectionConfig,
    FDGroup,
    LinearFDModel,
    SplineFDModel,
    detect_soft_fds,
)
from repro.indexes import (
    ColumnFilesIndex,
    FullScanIndex,
    RTreeIndex,
    SortedCellGridIndex,
    UniformGridIndex,
    available_indexes,
    create_index,
)
from repro.core import (
    COAXConfig,
    COAXIndex,
    DeltaStore,
    EngineClosedError,
    EngineConfig,
    LayoutConfig,
    QueryResult,
    ShardedCOAX,
    translate_query,
)
from repro.data.sql import parse_where
from repro.io import (
    UnsupportedFormatError,
    load_csv,
    load_engine,
    load_index,
    load_npz,
    save_csv,
    save_index,
    save_npz,
)
from repro.stats.profile import TableProfile, profile_table

__version__ = "1.0.0"

__all__ = [
    "MATERIALIZE",
    "Aggregate",
    "MaterializeIds",
    "TopK",
    "Interval",
    "Rectangle",
    "Schema",
    "Table",
    "AirlineConfig",
    "OSMConfig",
    "generate_airline_dataset",
    "generate_osm_dataset",
    "generate_knn_queries",
    "generate_point_queries",
    "generate_selectivity_queries",
    "WorkloadConfig",
    "BayesianLinearRegression",
    "DetectionConfig",
    "FDGroup",
    "LinearFDModel",
    "SplineFDModel",
    "detect_soft_fds",
    "ColumnFilesIndex",
    "FullScanIndex",
    "RTreeIndex",
    "SortedCellGridIndex",
    "UniformGridIndex",
    "available_indexes",
    "create_index",
    "COAXConfig",
    "COAXIndex",
    "EngineClosedError",
    "EngineConfig",
    "LayoutConfig",
    "ShardedCOAX",
    "DeltaStore",
    "QueryResult",
    "translate_query",
    "parse_where",
    "save_index",
    "load_index",
    "load_engine",
    "UnsupportedFormatError",
    "load_csv",
    "save_csv",
    "load_npz",
    "save_npz",
    "TableProfile",
    "profile_table",
    "__version__",
]
