"""Command-line entry point for the benchmark experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli fig6 --rows 50000 --queries 40
    python -m repro.cli update-bench --inserts 100000 --batch-size 10000
    python -m repro.cli query-bench --rows 30000 --queries 1024 --export BENCH_read.json
    python -m repro.cli query-bench --smoke --export BENCH_read.json
    python -m repro.cli crud --deletes 10000 --export BENCH_crud.json
    python -m repro.cli crud --smoke
    python -m repro.cli scale-bench --shards 1 2 4 8 --workers 1 4 --export BENCH_scale.json
    python -m repro.cli scale-bench --smoke --executor process
    python -m repro.cli restart-bench --rows 1000000 --export BENCH_restart.json
    python -m repro.cli restart-bench --smoke
    python -m repro.cli drift-bench --export BENCH_drift.json
    python -m repro.cli drift-bench --smoke
    python -m repro.cli serve-bench --clients 1 64 256 --export BENCH_serve.json
    python -m repro.cli serve-bench --smoke
    python -m repro.cli layout-bench --rows 1000000 --export BENCH_layout.json
    python -m repro.cli layout-bench --smoke
    python -m repro.cli agg-bench --rows 1000000 --export BENCH_agg.json
    python -m repro.cli agg-bench --smoke
    python -m repro.cli all --rows 20000
    python -m repro.cli lint --export repro_lint_findings.json

Every experiment prints the paper-style text table produced by its driver
in :mod:`repro.bench.experiments`.  ``update-bench`` is the command for the
delta-store update benchmark (an alias of the ``updates`` experiment id);
``query-bench`` runs the read-path benchmark (``read_path``); ``crud`` runs
the delete/update benchmark against a delete-aware full-scan oracle;
``scale-bench`` runs the sharded-engine scaling benchmark (``scale``) over
a ``--shards`` x ``--workers`` grid — ``--executor thread|process``
selects the scatter backend; ``restart-bench`` times the v6 mmap cold
start against the legacy npz copy-load (``restart``); ``drift-bench``
runs the drifting
insert stream comparing frozen vs adaptive FD models (``drift``), every
result verified against a full-scan oracle; ``serve-bench`` drives TCP
load through the asyncio serving front end, comparing the adaptive
query-coalescing server against a naive one-query-at-a-time baseline
(``serve``), every served result verified against direct engine queries;
``layout-bench`` runs the skewed-then-shifting stream comparing the
workload-adaptive shard layout against the static build-time partition
(``layout``), every eval result verified against a full-scan oracle;
``agg-bench`` runs the aggregate/kNN executor benchmark (``agg``),
comparing aggregate pushdown and ring-search kNN against the
materialize-then-reduce and brute-force baselines with per-query result
verification.
``--smoke`` is the quick CI
variant of each (asserting the batch/sharded/adaptive paths hold their
guarantees), and ``--export`` writes the JSON artifact.

``lint`` is not an experiment: it runs the repro-lint static-analysis
suite (:mod:`repro.analysis`) over ``src/repro`` and exits non-zero on
any unwaived finding; ``--export`` writes the structured JSON report.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench.experiments import EXPERIMENTS
from repro.bench.export import export_json

__all__ = ["main", "build_parser", "run_experiment", "run_lint_command"]

#: Command spellings accepted in addition to the experiment registry ids.
COMMAND_ALIASES = {
    "update-bench": "updates",
    "query-bench": "read_path",
    "scale-bench": "scale",
    "restart-bench": "restart",
    "drift-bench": "drift",
    "serve-bench": "serve",
    "layout-bench": "layout",
    "agg-bench": "agg",
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the CLI."""
    parser = argparse.ArgumentParser(
        prog="coax-bench",
        description="Reproduce the COAX paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (see 'list'), 'update-bench', 'all' to run "
            "everything, 'list', or 'lint' (static-analysis gate)"
        ),
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size (records)")
    parser.add_argument("--queries", type=int, default=None, help="queries per workload")
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument(
        "--inserts", type=int, default=None, help="insert-stream size (update-bench)"
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, help="insert batch size (update-bench)"
    )
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=None,
        help="query batch sizes to sweep (query-bench)",
    )
    parser.add_argument(
        "--deletes", type=int, default=None, help="delete-stream size (crud)"
    )
    parser.add_argument(
        "--updates", type=int, default=None, help="update-stream size (crud)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help="shard counts to sweep (scale-bench)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="worker-pool sizes to sweep (scale-bench)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default=None,
        help="scatter backend (scale-bench, restart-bench)",
    )
    parser.add_argument(
        "--n-shards",
        type=int,
        default=None,
        help="shard count of the saved engine (restart-bench, serve-bench)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=None,
        help="closed-loop client counts to sweep (serve-bench)",
    )
    parser.add_argument(
        "--offered-qps",
        type=int,
        nargs="+",
        default=None,
        help="open-loop offered query rates to sweep (serve-bench)",
    )
    parser.add_argument(
        "--swarm-clients",
        type=int,
        default=None,
        help="concurrent connections of the swarm phase (serve-bench)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI variant: small data, asserts batch >= sequential (query-bench)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the experiment result as JSON to PATH",
    )
    return parser


def _run_experiment(
    name: str,
    *,
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: Optional[int] = None,
    inserts: Optional[int] = None,
    deletes: Optional[int] = None,
    updates: Optional[int] = None,
    batch_size: Optional[int] = None,
    batch_sizes: Optional[Sequence[int]] = None,
    shards: Optional[Sequence[int]] = None,
    workers: Optional[Sequence[int]] = None,
    executor: Optional[str] = None,
    n_shards: Optional[int] = None,
    clients: Optional[Sequence[int]] = None,
    offered_qps: Optional[Sequence[int]] = None,
    swarm_clients: Optional[int] = None,
    smoke: bool = False,
):
    """Run one experiment by id (or alias), returning its result object."""
    name = COMMAND_ALIASES.get(name, name)
    try:
        runner, _ = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}") from exc
    kwargs = {}
    signature = inspect.signature(runner)
    forwarded = {
        "n_rows": rows,
        "n_queries": queries,
        "seed": seed,
        "n_inserts": inserts,
        "n_deletes": deletes,
        "n_updates": updates,
        "batch_size": batch_size,
        "batch_sizes": batch_sizes,
        "shard_counts": shards,
        "worker_counts": workers,
        "executor": executor,
        "n_shards": n_shards,
        "client_counts": clients,
        "offered_qps": offered_qps,
        "swarm_clients": swarm_clients,
        "smoke": smoke or None,
    }
    for parameter, value in forwarded.items():
        if value is not None and parameter in signature.parameters:
            kwargs[parameter] = value
    return runner(**kwargs)


def run_experiment(
    name: str,
    *,
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: Optional[int] = None,
    inserts: Optional[int] = None,
    deletes: Optional[int] = None,
    updates: Optional[int] = None,
    batch_size: Optional[int] = None,
    batch_sizes: Optional[Sequence[int]] = None,
    shards: Optional[Sequence[int]] = None,
    workers: Optional[Sequence[int]] = None,
    executor: Optional[str] = None,
    n_shards: Optional[int] = None,
    clients: Optional[Sequence[int]] = None,
    offered_qps: Optional[Sequence[int]] = None,
    swarm_clients: Optional[int] = None,
    smoke: bool = False,
) -> str:
    """Run one experiment by id (or alias) and return its formatted table."""
    return _run_experiment(
        name,
        rows=rows,
        queries=queries,
        seed=seed,
        inserts=inserts,
        deletes=deletes,
        updates=updates,
        batch_size=batch_size,
        batch_sizes=batch_sizes,
        shards=shards,
        workers=workers,
        executor=executor,
        n_shards=n_shards,
        clients=clients,
        offered_qps=offered_qps,
        swarm_clients=swarm_clients,
        smoke=smoke,
    ).table()


def run_lint_command(export: Optional[str] = None) -> int:
    """Run the repro-lint static-analysis suite over ``src/repro``.

    Prints every finding (waived ones annotated), writes the structured
    JSON report when ``--export`` is given, and exits 1 on any unwaived
    finding — this is the CI gate.
    """
    from repro.analysis import run_lint

    findings, report = run_lint(export=Path(export) if export else None)
    for finding in findings:
        print(finding.render())
    counts = report["counts"]
    print(
        f"repro-lint: {counts['findings']} finding(s), "
        f"{counts['unwaived']} unwaived, {counts['waived']} waived"
    )
    if export:
        print(f"wrote {export}")
    return 1 if counts["unwaived"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description) in sorted(EXPERIMENTS.items()):
            print(f"{name:12s} {description}")
        return 0

    if args.experiment == "lint":
        return run_lint_command(export=args.export)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            result = _run_experiment(
                name,
                rows=args.rows,
                queries=args.queries,
                seed=args.seed,
                inserts=args.inserts,
                deletes=args.deletes,
                updates=args.updates,
                batch_size=args.batch_size,
                batch_sizes=args.batch_sizes,
                shards=args.shards,
                workers=args.workers,
                executor=args.executor,
                n_shards=args.n_shards,
                clients=args.clients,
                offered_qps=args.offered_qps,
                swarm_clients=args.swarm_clients,
                smoke=args.smoke,
            )
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(result.table())
        if args.export:
            target = Path(args.export)
            if len(names) > 1:
                # One file per experiment, or `all` would silently overwrite
                # the same path and keep only the last result.
                target = target.with_name(
                    f"{target.stem}_{result.experiment}{target.suffix or '.json'}"
                )
            path = export_json(result, target)
            print(f"wrote {path}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
