"""Command-line entry point for the benchmark experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli fig6 --rows 50000 --queries 40
    python -m repro.cli all --rows 20000

Every experiment prints the paper-style text table produced by its driver
in :mod:`repro.bench.experiments`.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS

__all__ = ["main", "build_parser", "run_experiment"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the CLI."""
    parser = argparse.ArgumentParser(
        prog="coax-bench",
        description="Reproduce the COAX paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all' to run everything, or 'list'",
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size (records)")
    parser.add_argument("--queries", type=int, default=None, help="queries per workload")
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    return parser


def run_experiment(
    name: str,
    *,
    rows: Optional[int] = None,
    queries: Optional[int] = None,
    seed: Optional[int] = None,
) -> str:
    """Run one experiment by id and return its formatted table."""
    try:
        runner, _ = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}") from exc
    kwargs = {}
    signature = inspect.signature(runner)
    if rows is not None and "n_rows" in signature.parameters:
        kwargs["n_rows"] = rows
    if queries is not None and "n_queries" in signature.parameters:
        kwargs["n_queries"] = queries
    if seed is not None and "seed" in signature.parameters:
        kwargs["seed"] = seed
    result = runner(**kwargs)
    return result.table()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description) in sorted(EXPERIMENTS.items()):
            print(f"{name:12s} {description}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        try:
            output = run_experiment(
                name, rows=args.rows, queries=args.queries, seed=args.seed
            )
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
