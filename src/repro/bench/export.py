"""Exporting experiment results to CSV and JSON.

The experiment drivers return :class:`~repro.bench.reporting.ExperimentResult`
objects whose rows are exactly the series a plot of the corresponding paper
figure would show.  These helpers write them to disk so they can be plotted
with any external tool (the library itself deliberately has no plotting
dependency).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.bench.reporting import ExperimentResult

__all__ = ["export_csv", "export_json", "export_all", "STANDARD_FIELDS"]

PathLike = Union[str, Path]

#: Fields every exported row carries, so artifacts from different
#: experiments (and different executor sweeps of the same experiment)
#: join on a stable schema.  ``executor`` names the scatter backend that
#: produced the row (``""`` where execution played no part);
#: ``cold_start_s`` is the restart latency (``None`` outside the restart
#: benchmark); ``offered_qps``/``p50_ms``/``p99_ms``/``clients`` are the
#: serving-load axes (``None`` outside the serve benchmark);
#: ``shards_pruned``/``rows_examined`` are the engine's pruning-work
#: counters over the row's measurement window (``None`` where the row
#: did not sample engine statistics), so pruning efficiency is visible
#: in serving trajectories, not just engine benches.
STANDARD_FIELDS = {
    "executor": "",
    "cold_start_s": None,
    "offered_qps": None,
    "p50_ms": None,
    "p99_ms": None,
    "clients": None,
    "shards_pruned": None,
    "rows_examined": None,
}


def _standardised_rows(result: ExperimentResult) -> List[dict]:
    """The result rows with the standard fields filled in."""
    return [{**STANDARD_FIELDS, **row} for row in result.rows]


def export_csv(result: ExperimentResult, path: PathLike) -> Path:
    """Write the result rows as a CSV file with a unified header."""
    path = Path(path)
    rows = _standardised_rows(result)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write the full result (rows, notes, metadata) as JSON."""
    path = Path(path)
    payload = {
        "experiment": result.experiment,
        "description": result.description,
        "rows": _standardised_rows(result),
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def export_all(results: Iterable[ExperimentResult], directory: PathLike) -> List[Path]:
    """Export every result to ``<directory>/<experiment>.csv`` and ``.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for result in results:
        written.append(export_csv(result, directory / f"{result.experiment}.csv"))
        written.append(export_json(result, directory / f"{result.experiment}.json"))
    return written
