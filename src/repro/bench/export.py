"""Exporting experiment results to CSV and JSON.

The experiment drivers return :class:`~repro.bench.reporting.ExperimentResult`
objects whose rows are exactly the series a plot of the corresponding paper
figure would show.  These helpers write them to disk so they can be plotted
with any external tool (the library itself deliberately has no plotting
dependency).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.bench.reporting import ExperimentResult

__all__ = ["export_csv", "export_json", "export_all"]

PathLike = Union[str, Path]


def export_csv(result: ExperimentResult, path: PathLike) -> Path:
    """Write the result rows as a CSV file with a unified header."""
    path = Path(path)
    columns: List[str] = []
    for row in result.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return path


def export_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write the full result (rows, notes, metadata) as JSON."""
    path = Path(path)
    payload = {
        "experiment": result.experiment,
        "description": result.description,
        "rows": result.rows,
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def export_all(results: Iterable[ExperimentResult], directory: PathLike) -> List[Path]:
    """Export every result to ``<directory>/<experiment>.csv`` and ``.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for result in results:
        written.append(export_csv(result, directory / f"{result.experiment}.csv"))
        written.append(export_json(result, directory / f"{result.experiment}.json"))
    return written
