"""Benchmark harness.

Contains the timing/comparison infrastructure plus one driver module per
table or figure of the paper's evaluation (see DESIGN.md section 4 for the
experiment index).  Every driver is runnable through ``python -m repro.cli``
and through the pytest-benchmark suites in ``benchmarks/``.
"""

from repro.bench.harness import (
    ComparisonRow,
    IndexSpec,
    TimingResult,
    default_index_specs,
    execute_workload,
    run_comparison,
    time_workload,
)
from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.export import export_all, export_csv, export_json
from repro.bench.tuning import TuningResult, grid_search, tune_coax, tune_rtree

__all__ = [
    "ComparisonRow",
    "IndexSpec",
    "TimingResult",
    "default_index_specs",
    "execute_workload",
    "run_comparison",
    "time_workload",
    "ExperimentResult",
    "format_table",
    "export_all",
    "export_csv",
    "export_json",
    "TuningResult",
    "grid_search",
    "tune_coax",
    "tune_rtree",
]
