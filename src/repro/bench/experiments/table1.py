"""Table 1 — dataset characteristics.

The paper reports, per dataset: record count, key type, number of
dimensions, number of correlated dimensions, number of indexed dimensions in
the soft-FD index, and the primary-index ratio.  This driver builds COAX on
both synthetic datasets and reports the same columns, so the measured
correlated/indexed dimension counts and primary ratios can be compared with
the published ones (Airline: (3, 3) correlated, 2-4 indexed, 92%; OSM: 2
correlated, 3 indexed, 73%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.experiments.datasets import airline_table, osm_table
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.table import Table

__all__ = ["run"]

#: Paper-reported values for EXPERIMENTS.md comparisons.
PAPER_VALUES = {
    "Airline": {"dimensions": 8, "correlated": (3, 3), "indexed": "2-4", "primary_ratio": 0.92},
    "OSM": {"dimensions": 4, "correlated": (2,), "indexed": 3, "primary_ratio": 0.73},
}


def _describe(name: str, table: Table, config: COAXConfig) -> Dict[str, object]:
    index = COAXIndex(table, config=config)
    report = index.build_report
    group_sizes = tuple(group.n_attributes for group in report.groups)
    return {
        "dataset": name,
        "count": table.n_rows,
        "key_type": "float",
        "dimensions": table.n_dims,
        "correlated_dims": str(group_sizes) if group_sizes else "()",
        "indexed_dims": len(report.indexed_dimensions),
        "primary_ratio": round(report.primary_ratio, 3),
    }


def run(n_rows: int = 30_000, seed: int = 0) -> ExperimentResult:
    """Reproduce Table 1 on the synthetic datasets."""
    config = COAXConfig()
    rows: List[Dict[str, object]] = [
        _describe("Airline", airline_table(n_rows, seed=7 + seed), config),
        _describe("OSM", osm_table(n_rows, seed=11 + seed), config),
    ]
    return ExperimentResult(
        experiment="table1",
        description="Dataset characteristics (paper Table 1)",
        rows=rows,
        notes=[
            "paper: Airline correlated dims (3, 3), indexed 2-4, primary ratio 92%",
            "paper: OSM correlated dims (2,), indexed 3, primary ratio 73%",
            f"synthetic datasets at {n_rows} rows stand in for the 80M/105M originals",
        ],
    )
