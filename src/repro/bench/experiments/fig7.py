"""Figure 7 — range-query runtime versus selectivity (Airline, year 2008 subset).

The paper sweeps the average query selectivity over {35K, 150K, 750K, 1.5M}
matching points on a 7M-row subset and compares COAX (primary and outlier),
the R-Tree and Column Files.  At benchmark scale we keep the same *relative*
selectivities (0.5%, 2.1%, 10.7%, 21.4% of the dataset) so the crossover
behaviour is preserved, and report the absolute selectivity actually
measured next to each series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.experiments.datasets import airline_table
from repro.bench.experiments.fig6 import coax_component_timing
from repro.bench.harness import default_index_specs, run_comparison
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.queries import WorkloadConfig, generate_selectivity_queries

__all__ = ["run", "PAPER_SELECTIVITY_FRACTIONS"]

#: Paper selectivities {35K, 150K, 750K, 1.5M} relative to the 7M-row subset.
PAPER_SELECTIVITY_FRACTIONS: Sequence[float] = (0.005, 0.021, 0.107, 0.214)


def run(
    n_rows: int = 30_000,
    n_queries: int = 15,
    seed: int = 2,
    selectivity_fractions: Sequence[float] = PAPER_SELECTIVITY_FRACTIONS,
    coax_config: Optional[COAXConfig] = None,
) -> ExperimentResult:
    """Reproduce the Figure 7 selectivity sweep."""
    table = airline_table(n_rows)
    config = coax_config or COAXConfig()
    # Figure 7 compares COAX, R-Tree and Column Files (no full grid / scan).
    specs = [
        spec
        for spec in default_index_specs(coax_config=config, include_full_scan=False)
        if spec.name in ("COAX", "R-Tree", "Column Files")
    ]
    rows: List[Dict[str, object]] = []
    coax = COAXIndex(table, config=config)
    for fraction in selectivity_fractions:
        target = max(10, int(fraction * table.n_rows))
        workload = generate_selectivity_queries(
            table,
            target,
            WorkloadConfig(n_queries=n_queries, seed=seed),
        )
        measured_selectivity = workload.mean_selectivity(table)
        comparison = run_comparison(
            table,
            {f"sel~{target}": workload},
            specs,
            dataset_name="Airline",
            verify_against=table,
        )
        for row in comparison:
            as_dict = row.as_dict()
            as_dict["target_selectivity"] = target
            as_dict["measured_selectivity"] = round(measured_selectivity, 1)
            rows.append(as_dict)
        split = coax_component_timing(coax, workload)
        rows.append(
            {
                "index": "COAX (components)",
                "dataset": "Airline",
                "workload": f"sel~{target}",
                "target_selectivity": target,
                "measured_selectivity": round(measured_selectivity, 1),
                "coax_primary_ms": round(split["coax_primary_ms"], 3),
                "coax_outlier_ms": round(split["coax_outlier_ms"], 3),
            }
        )
    return ExperimentResult(
        experiment="fig7",
        description="Range-query runtime vs selectivity (paper Figure 7)",
        rows=rows,
        notes=[
            "selectivity targets follow the paper's fractions of the dataset "
            "(35K/150K/750K/1.5M of 7M rows)",
            "paper shape: COAX stays flat-ish and below R-Tree across selectivities; "
            "the outlier component grows with selectivity",
        ],
    )
