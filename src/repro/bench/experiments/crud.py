"""CRUD benchmark — delete/update throughput and post-compaction latency.

The companion of the ``updates`` (write path) and ``read_path`` (read path)
drivers for the delete/update half of the system:

* one-at-a-time ``delete()`` vs vectorised ``delete_batch()`` throughput
  (the acceptance bar is a >= 100x batch speedup at the default volume);
* ``update_batch()`` throughput — delete + reinsert under preserved row
  ids — against its one-row-at-a-time equivalent;
* query latency with tombstones in place (reads mask the bitmap) and
  after ``compact()`` physically reclaims them, compared against a fresh
  build over the same live data;
* every result set is verified against a delete-aware
  :class:`~repro.indexes.full_scan.FullScanIndex` oracle holding the same
  tombstones over the same (updated) data, so the driver can never report
  fast-but-wrong numbers.

Sequential-delete time is measured over a capped sample and scaled
linearly (per-delete cost is amortised O(log n)), so the driver stays
usable at large delete volumes; the note records the cap.  ``smoke=True``
shrinks everything to CI scale and asserts the batch paths beat their
sequential loops, so CRUD regressions fail the pipeline.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.bench.experiments.datasets import airline_table, standard_workloads
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.table import Table
from repro.indexes.full_scan import FullScanIndex

__all__ = ["run"]

#: Cap on the rows actually timed on the one-at-a-time delete/update paths.
SEQUENTIAL_SAMPLE_CAP = 3_000


def _updated_table(table: Table, row_ids: np.ndarray, updates: Dict[str, np.ndarray]) -> Table:
    """Copy of ``table`` with ``updates`` written at ``row_ids``."""
    columns = {}
    for name in table.schema:
        column = table.column(name).copy()
        column[row_ids] = updates[name]
        columns[name] = column
    return Table(columns)


def _verify(index: COAXIndex, oracle: FullScanIndex, workload) -> int:
    """Queries whose index result differs from the delete-aware full scan."""
    mismatches = 0
    for query in workload:
        left = np.sort(index.range_query(query))
        right = np.sort(oracle.range_query(query))
        if not np.array_equal(left, right):
            mismatches += 1
    return mismatches


def _mean_latency_ms(index, workload, repeats: int = 3) -> float:
    """Best-of-``repeats`` mean per-query latency (first pass warms caches)."""
    best = np.inf
    for _ in range(max(repeats, 1) + 1):
        samples = []
        for query in workload:
            start = time.perf_counter()
            index.range_query(query)
            samples.append(time.perf_counter() - start)
        best = min(best, float(np.mean(samples)))
    return best * 1e3


def run(
    n_rows: int = 30_000,
    n_queries: int = 25,
    seed: int = 5,
    n_deletes: int = 10_000,
    n_updates: int = 5_000,
    smoke: bool = False,
) -> ExperimentResult:
    """Run the CRUD benchmark and return its result table."""
    if smoke:
        n_rows = min(n_rows, 6_000)
        n_queries = min(n_queries, 12)
        n_deletes = min(n_deletes, 2_000)
        n_updates = min(n_updates, 1_000)
    # Keep a live majority whatever the caller passed: the update and
    # post-compaction phases need surviving rows to work on.
    n_deletes = max(1, min(n_deletes, n_rows // 2))
    n_updates = max(1, n_updates)
    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    rng = np.random.default_rng(seed)
    config = COAXConfig()

    table = airline_table(n_rows, seed=seed)
    workload = standard_workloads(table, n_queries=n_queries, seed=seed)["range"]
    base = COAXIndex(table, config=config)
    groups = list(base.groups)

    doomed = rng.choice(n_rows, size=n_deletes, replace=False).astype(np.int64)

    # ------------------------------------------------------------------
    # 1. Delete throughput: one-at-a-time delete() vs delete_batch().
    # Deletes are stateful, so each timing repeat runs on a fresh index;
    # the minimum over repeats is reported (one scheduler hiccup cannot
    # skew either side of the speedup).
    # ------------------------------------------------------------------
    repeats = 3
    sample = min(n_deletes, SEQUENTIAL_SAMPLE_CAP)
    seq_seconds = np.inf
    for _ in range(repeats):
        seq_index = COAXIndex(table, config=config, groups=groups)
        start = time.perf_counter()
        for row_id in doomed[:sample]:
            seq_index.delete(int(row_id))
        seq_seconds = min(
            seq_seconds, (time.perf_counter() - start) / sample * n_deletes
        )
    if n_deletes > sample:
        notes.append(
            f"sequential delete timed over {sample} rows and scaled linearly "
            f"to {n_deletes} (per-delete cost is amortised O(log n)); "
            f"both paths report the best of {repeats} runs"
        )
    batch_seconds = np.inf
    batch_index = None
    for _ in range(repeats):
        batch_index = COAXIndex(table, config=config, groups=groups)
        start = time.perf_counter()
        n_deleted = batch_index.delete_batch(doomed)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)
        assert n_deleted == n_deletes
    delete_speedup = seq_seconds / max(batch_seconds, 1e-9)
    rows.append(
        {
            "phase": "delete",
            "method": "sequential delete()",
            "rows": n_deletes,
            "seconds": round(seq_seconds, 4),
            "rows_per_s": int(n_deletes / max(seq_seconds, 1e-9)),
        }
    )
    rows.append(
        {
            "phase": "delete",
            "method": "delete_batch()",
            "rows": n_deletes,
            "seconds": round(batch_seconds, 4),
            "rows_per_s": int(n_deletes / max(batch_seconds, 1e-9)),
            "speedup_vs_seq": round(delete_speedup, 1),
        }
    )

    # ------------------------------------------------------------------
    # 2. Tombstoned reads verified against the delete-aware oracle.
    # ------------------------------------------------------------------
    oracle = FullScanIndex(table)
    oracle.delete_rows(doomed)
    tombstoned_ms = _mean_latency_ms(batch_index, workload)
    rows.append(
        {
            "phase": "query",
            "method": f"{n_deletes} tombstoned (pre-compaction)",
            "rows": batch_index.n_live,
            "mean_ms": round(tombstoned_ms, 4),
            "mismatched_queries": _verify(batch_index, oracle, workload),
        }
    )

    # ------------------------------------------------------------------
    # 3. Update throughput: update_batch() vs one-at-a-time updates.
    # ------------------------------------------------------------------
    live_ids = batch_index.live_row_ids()
    targets = rng.choice(live_ids, size=min(n_updates, len(live_ids)), replace=False)
    donors = rng.choice(live_ids, size=len(targets), replace=True)
    updates = {name: table.column(name)[donors] for name in table.schema}
    update_sample = min(len(targets), SEQUENTIAL_SAMPLE_CAP)
    seq_update_seconds = np.inf
    for _ in range(repeats):
        seq_update_index = COAXIndex(table, config=config, groups=groups)
        seq_update_index.delete_batch(doomed)
        start = time.perf_counter()
        for position in range(update_sample):
            seq_update_index.update_batch(
                targets[position : position + 1],
                {name: updates[name][position : position + 1] for name in table.schema},
            )
        seq_update_seconds = min(
            seq_update_seconds,
            (time.perf_counter() - start) / update_sample * len(targets),
        )
    start = time.perf_counter()
    batch_index.update_batch(targets, updates)
    batch_update_seconds = time.perf_counter() - start
    update_speedup = seq_update_seconds / max(batch_update_seconds, 1e-9)
    rows.append(
        {
            "phase": "update",
            "method": "sequential update_batch(1)",
            "rows": len(targets),
            "seconds": round(seq_update_seconds, 4),
            "rows_per_s": int(len(targets) / max(seq_update_seconds, 1e-9)),
        }
    )
    rows.append(
        {
            "phase": "update",
            "method": "update_batch()",
            "rows": len(targets),
            "seconds": round(batch_update_seconds, 4),
            "rows_per_s": int(len(targets) / max(batch_update_seconds, 1e-9)),
            "speedup_vs_seq": round(update_speedup, 1),
        }
    )

    # ------------------------------------------------------------------
    # 4. Compaction reclaims; post-compaction latency vs a fresh build.
    # ------------------------------------------------------------------
    oracle = FullScanIndex(_updated_table(table, targets, updates))
    oracle.delete_rows(doomed)
    start = time.perf_counter()
    batch_index.compact()
    compact_seconds = time.perf_counter() - start
    assert batch_index.n_tombstoned == 0 and batch_index.n_pending == 0
    compacted_ms = _mean_latency_ms(batch_index, workload)
    compacted_mismatches = _verify(batch_index, oracle, workload)
    rows.append(
        {
            "phase": "compact",
            "method": "compact() reclaim",
            "rows": batch_index.n_live,
            "seconds": round(compact_seconds, 4),
            "mean_ms": round(compacted_ms, 4),
            "mismatched_queries": compacted_mismatches,
        }
    )
    fresh = COAXIndex(
        batch_index.table,
        config=config,
        groups=groups,
        row_ids=batch_index.row_ids,
    )
    fresh_ms = _mean_latency_ms(fresh, workload)
    fresh_mismatches = _verify(fresh, oracle, workload)
    rows.append(
        {
            "phase": "compact",
            "method": "fresh build over live rows",
            "rows": fresh.n_live,
            "mean_ms": round(fresh_ms, 4),
            "latency_vs_fresh": round(compacted_ms / max(fresh_ms, 1e-9), 3),
            "mismatched_queries": fresh_mismatches,
        }
    )

    notes.append(
        "all result sets verified against a delete-aware FullScanIndex oracle"
    )
    total_mismatches = sum(
        int(row.get("mismatched_queries", 0)) for row in rows
    )
    if total_mismatches:
        raise AssertionError(
            f"CRUD results diverged from the delete-aware full scan "
            f"({total_mismatches} mismatched queries)"
        )
    if smoke:
        if delete_speedup < 10.0:
            raise AssertionError(
                f"batch deletes only {delete_speedup:.1f}x faster than "
                "one-at-a-time in smoke mode (expected >= 10x)"
            )
        if update_speedup < 5.0:
            raise AssertionError(
                f"batch updates only {update_speedup:.1f}x faster than "
                "one-at-a-time in smoke mode (expected >= 5x)"
            )
        notes.append(
            "smoke mode: asserted batch deletes >= 10x and batch updates >= 5x"
        )

    return ExperimentResult(
        experiment="crud",
        description="Deletes/updates — batch throughput and post-compaction latency",
        rows=rows,
        notes=notes,
    )
