"""Section 7 — effectiveness and the CSM theorems, validated by simulation.

Three validations:

* **Equation 5 (effectiveness).**  On synthetic linear data with a known
  margin, measure the ratio between the number of records actually matching
  a Y-range query and the number of records the translated scan examines,
  and compare it to ``q_y / (2 eps + q_y)``.
* **Theorems 7.1 and 7.3.**  Simulate i.i.d. gap streams, run the greedy
  segmentation of the transformed random walk, and compare the measured
  mean / variance of keys-per-segment against ``eps^2/sigma^2`` and
  ``2 eps^4 / (3 sigma^4)``.
* **Theorem 7.4.**  Compare the measured number of segments needed to cover
  a stream of length n against ``n sigma^2 / eps^2``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bench.reporting import ExperimentResult
from repro.stats.csm import segment_stream, simulate_gap_stream
from repro.stats.theory import (
    effectiveness_ratio,
    expected_keys_per_segment,
    expected_segment_count,
    keys_per_segment_variance,
)

__all__ = ["run", "measure_effectiveness", "measure_segmentation"]


def measure_effectiveness(
    *,
    n_rows: int = 50_000,
    slope: float = 1.5,
    epsilon: float = 4.0,
    query_widths: Sequence[float] = (2.0, 8.0, 32.0, 128.0),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Empirical counterpart of Equation 5 on synthetic in-margin data."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1000.0, size=n_rows)
    noise = rng.uniform(-epsilon, epsilon, size=n_rows)
    y = slope * x + noise
    rows: List[Dict[str, object]] = []
    for query_width in query_widths:
        measured_ratios = []
        for _ in range(30):
            low = rng.uniform(y.min(), y.max() - query_width)
            high = low + query_width
            # Records the translated scan examines: x in [ (low-eps)/a, (high+eps)/a ].
            x_low = (low - epsilon) / slope
            x_high = (high + epsilon) / slope
            scanned = np.sum((x >= x_low) & (x <= x_high))
            matched = np.sum((y >= low) & (y <= high) & (x >= x_low) & (x <= x_high))
            if scanned > 0:
                measured_ratios.append(matched / scanned)
        measured = float(np.mean(measured_ratios)) if measured_ratios else 0.0
        predicted = effectiveness_ratio(query_width, epsilon)
        rows.append(
            {
                "check": "effectiveness (Eq. 5)",
                "query_width": query_width,
                "epsilon": epsilon,
                "predicted": round(predicted, 4),
                "measured": round(measured, 4),
                "relative_error": round(abs(measured - predicted) / max(predicted, 1e-12), 4),
            }
        )
    return rows


def measure_segmentation(
    *,
    stream_length: int = 200_000,
    sigma: float = 1.0,
    epsilons: Sequence[float] = (5.0, 10.0, 20.0),
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Empirical counterparts of Theorems 7.1, 7.3 and 7.4."""
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for epsilon in epsilons:
        gaps = simulate_gap_stream(stream_length, mean=3.0, std=sigma, rng=rng)
        lengths = np.array(segment_stream(gaps, epsilon, slope=3.0), dtype=np.float64)
        # The final (possibly truncated) segment biases the moments; drop it.
        complete = lengths[:-1] if len(lengths) > 1 else lengths
        measured_mean = float(complete.mean()) if len(complete) else 0.0
        measured_var = float(complete.var()) if len(complete) else 0.0
        measured_segments = float(len(lengths))
        rows.extend(
            [
                {
                    "check": "keys per segment (Thm 7.1)",
                    "epsilon": epsilon,
                    "sigma": sigma,
                    "predicted": round(expected_keys_per_segment(epsilon, sigma), 2),
                    "measured": round(measured_mean, 2),
                    "relative_error": _relative_error(
                        measured_mean, expected_keys_per_segment(epsilon, sigma)
                    ),
                },
                {
                    "check": "variance of keys per segment (Thm 7.3)",
                    "epsilon": epsilon,
                    "sigma": sigma,
                    "predicted": round(keys_per_segment_variance(epsilon, sigma), 2),
                    "measured": round(measured_var, 2),
                    "relative_error": _relative_error(
                        measured_var, keys_per_segment_variance(epsilon, sigma)
                    ),
                },
                {
                    "check": "segments for stream (Thm 7.4)",
                    "epsilon": epsilon,
                    "sigma": sigma,
                    "predicted": round(expected_segment_count(stream_length, epsilon, sigma), 2),
                    "measured": round(measured_segments, 2),
                    "relative_error": _relative_error(
                        measured_segments, expected_segment_count(stream_length, epsilon, sigma)
                    ),
                },
            ]
        )
    return rows


def _relative_error(measured: float, predicted: float) -> float:
    return round(abs(measured - predicted) / max(abs(predicted), 1e-12), 4)


def run(
    n_rows: int = 50_000,
    stream_length: int = 200_000,
    seed: int = 0,
) -> ExperimentResult:
    """Validate the Section 7 analysis against simulation."""
    rows = measure_effectiveness(n_rows=n_rows, seed=seed)
    rows.extend(measure_segmentation(stream_length=stream_length, seed=seed + 1))
    return ExperimentResult(
        experiment="theory",
        description="Effectiveness (Eq. 5) and CSM theorems 7.1/7.3/7.4 vs simulation",
        rows=rows,
        notes=[
            "theorems assume sigma << eps; relative error shrinks as eps/sigma grows",
        ],
    )
