"""Per-table / per-figure experiment drivers.

Each module reproduces one artefact of the paper's evaluation and returns an
:class:`~repro.bench.reporting.ExperimentResult` whose rows are the numbers
the corresponding table or figure reports.  The mapping from paper artefact
to driver is documented in DESIGN.md; the ``updates`` driver goes beyond
the paper and benchmarks the delta-store update subsystem.
"""

from repro.bench.experiments import (
    ablations,
    agg,
    appendix_g,
    crud,
    drift,
    fig4,
    fig6,
    fig7,
    fig8,
    headline,
    layout,
    read_path,
    restart,
    scale,
    serve,
    table1,
    theory,
    updates,
)

#: Registry used by the CLI: experiment id -> (callable, description).
EXPERIMENTS = {
    "table1": (table1.run, "Table 1 — dataset characteristics"),
    "fig4": (fig4.run, "Figure 4a — page-length distribution of a 2D grid"),
    "fig6": (fig6.run, "Figure 6 — query runtime on Airline and OSM"),
    "fig7": (fig7.run, "Figure 7 — range-query runtime vs selectivity"),
    "fig8": (fig8.run, "Figure 8 — runtime vs memory-overhead trade-off"),
    "theory": (theory.run, "Section 7 — effectiveness and Theorems 7.1-7.4"),
    "appendix_g": (appendix_g.run, "Appendix G — grid cells scanned vs soft-FD index"),
    "headline": (headline.run, "Headline claims — memory reduction and speedup"),
    "ablations": (ablations.run, "Ablations — margins, outlier index, bucketing, splines"),
    "updates": (updates.run, "Updates — insert throughput and latency under writes"),
    "read_path": (read_path.run, "Read path — sequential vs batch query execution"),
    "crud": (crud.run, "CRUD — delete/update throughput and post-compaction latency"),
    "restart": (restart.run, "Restart — v6 mmap cold start vs legacy npz copy-load"),
    "scale": (scale.run, "Scale — sharded scatter-gather execution and shard pruning"),
    "drift": (drift.run, "Drift — frozen vs adaptive FD models on a drifting stream"),
    "serve": (serve.run, "Serve — asyncio front end with adaptive query coalescing"),
    "layout": (layout.run, "Layout — workload-adaptive shard boundaries vs static"),
    "agg": (agg.run, "Aggregates/kNN — executor pushdown vs materialize-then-reduce"),
}

__all__ = [
    "EXPERIMENTS",
    "ablations",
    "agg",
    "appendix_g",
    "crud",
    "drift",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "headline",
    "layout",
    "read_path",
    "restart",
    "scale",
    "serve",
    "table1",
    "theory",
    "updates",
]
