"""Read-path benchmark — sequential vs batch query execution.

The companion of the ``updates`` driver for the other half of the system:
it produces the read-latency/throughput trajectory (``BENCH_read.json``)
of the vectorized query engine.  For each dataset (Airline and OSM) and
each index with a batched read path (COAX and the Column Files layout it
is built on) the driver measures

* the sequential baseline — ``range_query`` in a Python loop, one query at
  a time — on the paper's range (KNN-rectangle) and point workloads;
* the batch path — ``batch_range_query`` — across a sweep of batch sizes,
  reporting throughput, mean latency and the speedup over the sequential
  loop;
* a COAX configuration with pending delta rows, exercising the batched
  delta scan (``DeltaStore.scan_batch``) under un-compacted inserts.

Every batch result is verified element-for-element against the sequential
result of the same query before any number is reported, so the driver can
never report fast-but-wrong throughput.  ``smoke=True`` shrinks the
dataset for CI and asserts the batch path is at least as fast as the
sequential loop, so read-path regressions fail the pipeline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.experiments.datasets import airline_table, osm_table, standard_workloads
from repro.bench.harness import count_mismatches, time_batched_queries
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.indexes.base import MultidimensionalIndex
from repro.indexes.column_files import ColumnFilesIndex

__all__ = ["run"]

#: Batch sizes swept by the default configuration (1 = the sequential loop).
DEFAULT_BATCH_SIZES: Tuple[int, ...] = (64, 256, 1024)

#: Fraction of rows held back as an insert stream for the pending-delta rows.
PENDING_FRACTION = 0.2


def _time_sequential(
    index: MultidimensionalIndex, queries: Sequence, repeats: int
) -> Tuple[float, List[np.ndarray]]:
    """Best-of-``repeats`` wall clock plus results of the per-query loop."""
    best = np.inf
    results: List[np.ndarray] = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        results = [index.range_query(query) for query in queries]
        best = min(best, time.perf_counter() - start)
    return best, results


def _bench_index(
    rows: List[Dict[str, object]],
    dataset: str,
    index_name: str,
    index: MultidimensionalIndex,
    workloads: Dict[str, Sequence],
    batch_sizes: Sequence[int],
    repeats: int,
) -> Dict[str, float]:
    """Benchmark one index on every workload; returns best speedup per workload."""
    best: Dict[str, float] = {}
    for workload_name, queries in workloads.items():
        queries = list(queries)
        # Warm-up: fault in caches and lazily built lookups on both paths.
        index.batch_range_query(queries[: min(32, len(queries))])
        for query in queries[: min(32, len(queries))]:
            index.range_query(query)
        seq_seconds, seq_results = _time_sequential(index, queries, repeats)
        rows.append(
            {
                "dataset": dataset,
                "index": index_name,
                "workload": workload_name,
                "mode": "sequential",
                "batch_size": 1,
                "queries": len(queries),
                "seconds": round(seq_seconds, 4),
                "queries_per_s": int(len(queries) / max(seq_seconds, 1e-9)),
                "mean_ms": round(seq_seconds / len(queries) * 1e3, 4),
                "mismatched_queries": 0,
            }
        )
        for batch_size in batch_sizes:
            batch_seconds, batch_results = time_batched_queries(index, queries, batch_size, repeats)
            mismatched = count_mismatches(seq_results, batch_results)
            speedup = seq_seconds / max(batch_seconds, 1e-9)
            best[workload_name] = max(best.get(workload_name, 0.0), speedup)
            rows.append(
                {
                    "dataset": dataset,
                    "index": index_name,
                    "workload": workload_name,
                    "mode": "batch",
                    "batch_size": batch_size,
                    "queries": len(queries),
                    "seconds": round(batch_seconds, 4),
                    "queries_per_s": int(len(queries) / max(batch_seconds, 1e-9)),
                    "mean_ms": round(batch_seconds / len(queries) * 1e3, 4),
                    "speedup_vs_seq": round(speedup, 2),
                    "mismatched_queries": mismatched,
                }
            )
            if mismatched:
                raise AssertionError(
                    f"batch results diverged from sequential on {dataset}/{index_name}/"
                    f"{workload_name} at batch size {batch_size} ({mismatched} queries)"
                )
    return best


def run(
    n_rows: int = 30_000,
    n_queries: int = 1024,
    seed: int = 5,
    batch_sizes: Optional[Sequence[int]] = None,
    smoke: bool = False,
    repeats: int = 3,
) -> ExperimentResult:
    """Run the read-path benchmark and return its result table.

    Every (mode, batch size) combination is timed ``repeats`` times and the
    minimum is reported, so one scheduler hiccup cannot skew a trajectory
    point.  ``smoke`` shrinks the dataset/workload to CI scale and asserts
    the batch path beats the sequential loop for COAX at its best batch
    size on every dataset/workload combination.
    """
    if smoke:
        n_rows = min(n_rows, 6_000)
        n_queries = min(n_queries, 256)
        batch_sizes = tuple(batch_sizes) if batch_sizes else (64, 256)
        # Keep full best-of-N timing: the smoke assertion (batch >=
        # sequential at the best batch size) is a CI gate, and the best of
        # `repeats` runs x len(batch_sizes) sizes makes a scheduler stall
        # on a shared runner vanishingly unlikely to flip it.
    else:
        batch_sizes = tuple(batch_sizes) if batch_sizes else DEFAULT_BATCH_SIZES
    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    config = COAXConfig()
    speedups: Dict[Tuple[str, str, str], float] = {}

    for dataset, maker, dataset_seed in (
        ("Airline", airline_table, seed),
        ("OSM", osm_table, seed + 1),
    ):
        n_pending = max(int(n_rows * PENDING_FRACTION), 1)
        full = maker(n_rows + n_pending, seed=dataset_seed)
        table = full.take(np.arange(n_rows, dtype=np.int64))
        stream = full.take(np.arange(n_rows, full.n_rows, dtype=np.int64))
        workloads = {
            name: list(workload)
            for name, workload in standard_workloads(
                table, n_queries=n_queries, seed=dataset_seed
            ).items()
        }

        coax = COAXIndex(table, config=config)
        speedups.update(
            {
                (dataset, "COAX", workload): value
                for workload, value in _bench_index(
                    rows, dataset, "COAX", coax, workloads, batch_sizes, repeats
                ).items()
            }
        )
        column_files = ColumnFilesIndex(table, cells_per_dim=8)
        _bench_index(
            rows, dataset, "Column Files", column_files, workloads, batch_sizes, repeats
        )

        # COAX with pending delta rows: the batched delta scan rides along.
        pending = COAXIndex(table, config=config, groups=list(coax.groups))
        pending.insert_batch(stream)
        _bench_index(
            rows,
            dataset,
            f"COAX (+{stream.n_rows} pending)",
            pending,
            workloads,
            batch_sizes,
            repeats,
        )

    notes.append(
        "batch results verified element-for-element against the sequential loop"
    )
    if smoke:
        slower = {
            key: value for key, value in speedups.items() if value < 1.0
        }
        if slower:
            raise AssertionError(
                f"batch path slower than the sequential loop in smoke mode: {slower}"
            )
        notes.append("smoke mode: asserted batch >= sequential throughput for COAX")

    return ExperimentResult(
        experiment="read_path",
        description="Read path — sequential vs batch query execution",
        rows=rows,
        notes=notes,
    )
