"""Workload-adaptive shard layout benchmark (CLI: ``layout-bench``).

A skewed-then-shifting query-and-write stream against two sharded
engines over the same table: one with the build-time (static) range
partition, one with :class:`~repro.core.layout.LayoutMonitor` enabled.
The static quantile layout balances the *data* — but a skewed workload
concentrates queries (and writes) on a thin slice of the domain, so the
hot slice lives inside one or two coarse shards: every query pays those
shards' full per-dispatch work, and every pending write landing there is
linearly re-scanned by every hot query until the next compaction.  The
adaptive engine re-learns its boundaries from the sketched workload at
compaction, carving the hot slice into narrow shards (and fencing the
cold remainder), which localises both the scans and the pending deltas.

Three measured phases, same maintenance schedule for both engines:

* **skew** — the workload concentrates on region A: warm-up queries
  feed the sketch, writes land in A, both engines compact (the adaptive
  one re-partitions), more writes arrive, then the eval batch is timed.
* **shift-before-adapt** — the workload jumps to region B and is
  evaluated *before* any compaction: the adaptive layout is still tuned
  for A, so both engines are degraded — the recovery below comes from
  re-layout, not from some standing advantage.
* **shift-after-adapt** — both engines compact on the B workload (the
  adaptive one re-partitions for B, the static one merely folds its
  delta), post-compaction writes arrive, and the eval batch is timed:
  the adaptive engine recovers while the static layout stays degraded.

Every eval result of every phase is verified element-for-element
against a NumPy full-scan oracle over the live rows.  ``smoke=True``
shrinks the stream to CI scale and asserts the layout gates: at least
one adopted re-layout, bit-identical results, and the adaptive engine
beating static on post-shift latency and rows examined.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import count_mismatches
from repro.bench.reporting import ExperimentResult
from repro.core.config import EngineConfig, LayoutConfig
from repro.core.engine import ShardedCOAX
from repro.data.predicates import Rectangle
from repro.data.queries import _knn_rectangle, _standardised_matrix
from repro.data.table import Table

__all__ = ["run"]

#: Hot regions of the two workload phases, as (low, high) on ``x``.  Both
#: sit strictly inside one static shard (the build-time quantile cuts of 8
#: shards land near multiples of 125 on ``x`` and 250 on ``y``), so the
#: static engine concentrates each phase's pending writes in a single
#: shard — the degradation an adaptive layout is supposed to repair.
REGION_SKEW: Tuple[float, float] = (0.0, 100.0)
REGION_SHIFT: Tuple[float, float] = (385.0, 490.0)

#: Post-shift rows_examined factor the smoke gate demands of the
#: adaptive engine.  The counter is deterministic for a given seed, so
#: CI can hold it to the same 1.5x bar the committed full-scale
#: artifact's latency speedup meets without gating on wall clock.
GATE_ROWS_FACTOR = 1.5


def _synthetic_columns(
    rng: np.random.Generator, n: int, low: float, high: float
) -> Dict[str, np.ndarray]:
    """Rows of the benchmark's correlated schema with ``x`` in a region."""
    x = rng.uniform(low, high, n)
    y = 2.0 * x + rng.normal(0.0, 1.0, n)
    outliers = rng.random(n) < 0.05
    y[outliers] = rng.uniform(0.0, 2000.0, int(outliers.sum()))
    z = rng.uniform(0.0, 10.0, n)
    return {"x": x, "y": y, "z": z}


class _Oracle:
    """Full-scan ground truth over the live rows (base plus inserts)."""

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        self.columns = {name: np.asarray(col) for name, col in columns.items()}

    def append(self, batch: Dict[str, np.ndarray]) -> None:
        self.columns = {
            name: np.concatenate([col, np.asarray(batch[name])])
            for name, col in self.columns.items()
        }

    def query(self, rectangle: Rectangle) -> np.ndarray:
        n = len(next(iter(self.columns.values())))
        mask = np.ones(n, dtype=bool)
        for dim, column in self.columns.items():
            interval = rectangle.interval(dim)
            if interval.is_unbounded:
                continue
            mask &= (column >= interval.low) & (column <= interval.high)
        return np.flatnonzero(mask)


def _region_queries(
    oracle: _Oracle,
    region: Tuple[float, float],
    n_queries: int,
    k_neighbours: int,
    seed: int,
) -> List[Rectangle]:
    """KNN rectangles anchored at rows inside the hot region."""
    rng = np.random.default_rng(seed)
    dims = tuple(oracle.columns)
    table = Table(dict(oracle.columns))
    matrix, _ = _standardised_matrix(table, dims)
    raw = table.to_matrix(dims)
    candidates = np.flatnonzero(
        (oracle.columns["x"] >= region[0]) & (oracle.columns["x"] <= region[1])
    )
    anchors = rng.choice(candidates, size=n_queries)
    return [
        _knn_rectangle(matrix, raw, dims, int(anchor), k_neighbours)
        for anchor in anchors
    ]


def _feed_inserts(
    engines: Sequence[ShardedCOAX],
    oracle: _Oracle,
    rng: np.random.Generator,
    region: Tuple[float, float],
    n_rows: int,
    batch_size: int,
) -> None:
    """Stream region-local writes into every engine (and the oracle)."""
    for start in range(0, n_rows, batch_size):
        batch = _synthetic_columns(rng, min(batch_size, n_rows - start), *region)
        for engine in engines:
            engine.insert_batch(batch)
        oracle.append(batch)


def _timed_eval(
    engine: ShardedCOAX, queries: Sequence[Rectangle], repeats: int = 3
) -> Dict[str, float]:
    """One measured batch: wall clock plus the engine-stats window.

    The batch runs ``repeats`` times and the best wall clock wins — the
    work is deterministic (the stats window confirms it), so the minimum
    is the least-noise estimate of the engine's actual cost.  Counters
    are taken from the first pass only.
    """
    before = engine.stats.snapshot()
    started = time.perf_counter()
    results = engine.batch_range_query(queries)
    wall = time.perf_counter() - started
    window = engine.stats.delta(before)
    for _ in range(max(repeats, 1) - 1):
        started = time.perf_counter()
        engine.batch_range_query(queries)
        wall = min(wall, time.perf_counter() - started)
    return {
        "wall_s": wall,
        "mean_ms": wall * 1e3 / max(len(queries), 1),
        "rows_examined": window.rows_examined,
        "shards_pruned": window.shards_pruned,
        "rows_matched": window.rows_matched,
        "results": results,
    }


def run(
    n_rows: int = 1_000_000,
    n_queries: int = 512,
    seed: int = 29,
    n_shards: int = 8,
    smoke: bool = False,
) -> ExperimentResult:
    """Run the adaptive-layout benchmark and return its result table.

    ``n_queries`` is the size of each phase's eval batch (the warm-up
    that feeds the layout sketch uses half of it).  Writes are sized
    relative to ``n_rows``: 6% of the table streams in per phase before
    the compaction, 12% after it — the pending set the eval measures;
    hot writes between compactions are exactly what a coarse hot shard
    re-scans per query.  ``smoke`` shrinks everything to CI scale and
    asserts the gates.
    """
    if smoke:
        # Large enough that per-row scan work dominates the fixed
        # per-shard dispatch cost (below ~150k rows the two are
        # comparable and the latency gate would measure noise).
        n_rows = min(n_rows, 200_000)
        n_queries = min(n_queries, 192)

    rng = np.random.default_rng(seed)
    base = _synthetic_columns(rng, n_rows, 0.0, 1000.0)
    oracle = _Oracle(base)
    k_neighbours = max(64, n_rows // 5_000)
    warm_queries = max(64, n_queries // 2)
    pre_compact_rows = max(3_000, (n_rows * 6) // 100)
    post_compact_rows = max(6_000, (n_rows * 12) // 100)
    insert_batch = max(1_000, pre_compact_rows // 8)

    # The ring sketch IS the staleness control: sized to roughly one eval
    # batch, it has fully turned over by each compaction, so the proposal
    # reflects the post-shift workload rather than the mixed history.
    layout_config = LayoutConfig(
        enabled=True,
        sketch_size=max(256, n_queries),
        min_queries=warm_queries,
        min_gain=1.2,
        max_shards=n_shards,
    )
    static = ShardedCOAX(
        Table(dict(base)), config=EngineConfig(n_shards=n_shards, workers=1)
    )
    adaptive = ShardedCOAX(
        Table(dict(base)),
        config=EngineConfig(n_shards=n_shards, workers=1, layout=layout_config),
    )
    engines = {"static": static, "adaptive": adaptive}

    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    verified = 0
    mismatched = 0
    mean_ms: Dict[Tuple[str, str], float] = {}
    examined: Dict[Tuple[str, str], int] = {}

    def eval_phase(phase: str, queries: Sequence[Rectangle]) -> None:
        nonlocal verified, mismatched
        expected = [oracle.query(query) for query in queries]
        for name, engine in engines.items():
            point = _timed_eval(engine, queries)
            sorted_results = [np.sort(ids) for ids in point["results"]]
            bad = count_mismatches(expected, sorted_results)
            mismatched += bad
            verified += len(queries)
            mean_ms[(name, phase)] = point["mean_ms"]
            examined[(name, phase)] = int(point["rows_examined"])
            rows.append(
                {
                    "dataset": "Synthetic-1M" if not smoke else "Synthetic",
                    "phase": phase,
                    "engine": name,
                    "n_rows": len(next(iter(oracle.columns.values()))),
                    "queries": len(queries),
                    "mean_ms": round(point["mean_ms"], 4),
                    "seconds": round(point["wall_s"], 4),
                    "rows_examined": int(point["rows_examined"]),
                    "shards_pruned": int(point["shards_pruned"]),
                    "rows_matched": int(point["rows_matched"]),
                    "layout_epoch": (
                        engine.layout.epoch if engine.layout is not None else 0
                    ),
                    "mismatched_queries": bad,
                }
            )
            if bad:
                raise AssertionError(
                    f"{phase}/{name}: {bad}/{len(queries)} results diverged "
                    "from the full-scan oracle"
                )

    def maintenance_point(region: Tuple[float, float], tag: str) -> None:
        """One phase's shared write/compact schedule for both engines."""
        _feed_inserts(
            engines.values(), oracle, rng, region, pre_compact_rows, insert_batch
        )
        for engine in engines.values():
            engine.compact()
        _feed_inserts(
            engines.values(), oracle, rng, region, post_compact_rows, insert_batch
        )
        if adaptive.layout is not None and adaptive.layout.history:
            boundaries = adaptive.layout.history[-1]
            notes.append(
                f"{tag}: adaptive layout epoch {adaptive.layout.epoch}, "
                f"{len(boundaries) + 1} shards, boundaries "
                f"[{', '.join(f'{b:.1f}' for b in boundaries)}]"
            )

    # ----------------------------- skew ------------------------------
    warm = _region_queries(oracle, REGION_SKEW, warm_queries, k_neighbours, seed + 1)
    for engine in engines.values():
        engine.batch_range_query(warm)
    maintenance_point(REGION_SKEW, "skew")
    eval_phase("skew", _region_queries(oracle, REGION_SKEW, n_queries,
                                       k_neighbours, seed + 2))

    # ------------------------ shift (no adapt) ------------------------
    # The workload jumps; evaluate before any compaction so the adaptive
    # engine still runs the layout it learned for the old region.
    eval_phase(
        "shift-before-adapt",
        _region_queries(oracle, REGION_SHIFT, n_queries, k_neighbours, seed + 3),
    )

    # ------------------------ shift (adapted) -------------------------
    warm = _region_queries(oracle, REGION_SHIFT, warm_queries, k_neighbours, seed + 4)
    for engine in engines.values():
        engine.batch_range_query(warm)
    maintenance_point(REGION_SHIFT, "shift")
    eval_phase(
        "shift-after-adapt",
        _region_queries(oracle, REGION_SHIFT, n_queries, k_neighbours, seed + 5),
    )

    for engine in engines.values():
        engine.close()

    epochs = adaptive.layout.epoch if adaptive.layout is not None else 0
    speedup = mean_ms[("static", "shift-after-adapt")] / max(
        mean_ms[("adaptive", "shift-after-adapt")], 1e-9
    )
    # Recovery compares the two structurally identical phases — the
    # adapted-skew and post-shift evals both run after the same write
    # volume in their respective hot regions — so the ratio isolates how
    # completely the second re-layout restored the adapted regime.
    recovery = mean_ms[("adaptive", "shift-after-adapt")] / max(
        mean_ms[("adaptive", "skew")], 1e-9
    )
    notes.append(
        f"every eval result verified element-for-element against the "
        f"full-scan oracle ({verified} results checked, {mismatched} mismatches)"
    )
    notes.append(
        f"re-layout adopted {epochs} time(s); post-shift adaptive is "
        f"{speedup:.2f}x static on mean latency with "
        f"{examined[('static', 'shift-after-adapt')]:,} vs "
        f"{examined[('adaptive', 'shift-after-adapt')]:,} rows examined"
    )
    notes.append(
        f"recovery: adaptive post-shift latency is {recovery:.2f}x its "
        "adapted-skew latency (same workload shape, re-layouted region)"
    )

    if epochs < 1:
        raise AssertionError("adaptive engine never adopted a re-layout")
    if smoke:
        # The CI gate asserts the deterministic counter, not wall clock:
        # rows_examined is bit-reproducible for a given seed while the
        # latency ratio swings with machine load.  The committed
        # full-scale artifact is where the latency speedup is held to
        # the same bar.
        rows_factor = examined[("static", "shift-after-adapt")] / max(
            examined[("adaptive", "shift-after-adapt")], 1
        )
        if rows_factor < GATE_ROWS_FACTOR:
            raise AssertionError(
                f"post-shift adaptive rows_examined advantage "
                f"{rows_factor:.2f}x below the {GATE_ROWS_FACTOR}x gate"
            )
        notes.append(
            "smoke mode: asserted oracle identity, >=1 adopted re-layout, "
            f"and a >={GATE_ROWS_FACTOR}x post-shift rows_examined "
            f"advantage (got {rows_factor:.2f}x)"
        )

    return ExperimentResult(
        experiment="layout",
        description=(
            "Layout — workload-adaptive shard boundaries vs the static "
            "build-time partition on a skewed-then-shifting stream"
        ),
        rows=rows,
        notes=notes,
    )
