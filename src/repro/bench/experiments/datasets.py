"""Shared dataset/workload construction for the experiment drivers.

The paper runs on 80M (Airline) and 105M (OSM) records; the drivers default
to tens of thousands of records so an experiment finishes in seconds on a
laptop, and every driver accepts ``n_rows`` to scale up.  All drivers use
the same two datasets so their numbers are comparable with each other.
"""

from __future__ import annotations

from typing import Dict

from repro.data.airline import AirlineConfig, generate_airline_dataset
from repro.data.osm import OSMConfig, generate_osm_dataset
from repro.data.queries import (
    QueryWorkload,
    WorkloadConfig,
    generate_knn_queries,
    generate_point_queries,
)
from repro.data.table import Table

__all__ = ["airline_table", "osm_table", "standard_workloads"]


def airline_table(n_rows: int = 30_000, seed: int = 7) -> Table:
    """The synthetic Airline dataset at benchmark scale."""
    table, _ = generate_airline_dataset(AirlineConfig(n_rows=n_rows, seed=seed))
    return table


def osm_table(n_rows: int = 30_000, seed: int = 11) -> Table:
    """The synthetic OSM dataset at benchmark scale."""
    table, _ = generate_osm_dataset(OSMConfig(n_rows=n_rows, seed=seed))
    return table


def standard_workloads(
    table: Table,
    *,
    n_queries: int = 40,
    k_neighbours: int = 200,
    seed: int = 1,
) -> Dict[str, QueryWorkload]:
    """The paper's two workloads: KNN-derived range queries and point queries."""
    range_workload = generate_knn_queries(
        table, WorkloadConfig(n_queries=n_queries, k_neighbours=k_neighbours, seed=seed)
    )
    point_workload = generate_point_queries(
        table, WorkloadConfig(n_queries=n_queries, seed=seed + 1)
    )
    return {"range": range_workload, "point": point_workload}
