"""Figure 8 — runtime versus memory-overhead trade-off.

The paper sweeps each index's main size knob (cell counts for the grids,
node capacity for the R-Tree) and plots mean range-query runtime against the
index directory size, for the Airline and OSM datasets.  The COAX series is
reported as primary, outlier and total, like the figure's three series.
The "sweet spot" behaviour — runtime first drops then flattens or rises as
the directory grows — is the shape to compare.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.experiments.datasets import airline_table, osm_table, standard_workloads
from repro.bench.harness import time_workload
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.queries import QueryWorkload
from repro.data.table import Table
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.rtree import RTreeIndex

__all__ = ["run"]

#: Cell-count sweep for the grid-based structures.
DEFAULT_CELL_SWEEP: Sequence[int] = (2, 4, 8, 16)
#: Node-capacity sweep for the R-Tree (paper: best between 8 and 12).
DEFAULT_CAPACITY_SWEEP: Sequence[int] = (4, 8, 12, 24)


def _coax_rows(
    dataset: str,
    table: Table,
    workload: QueryWorkload,
    cell_sweep: Sequence[int],
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for cells in cell_sweep:
        config = COAXConfig(primary_cells_per_dim=cells, outlier_cells_per_dim=max(2, cells // 2))
        index = COAXIndex(table, config=config)
        timing = time_workload(index, workload)
        breakdown = index.memory_breakdown()
        rows.append(
            {
                "index": "COAX (total)",
                "dataset": dataset,
                "knob": f"cells={cells}",
                "mean_ms": round(timing.mean_ms, 3),
                "dir_bytes": index.directory_bytes(),
                "primary_bytes": breakdown["primary"],
                "outlier_bytes": breakdown["outlier"],
                "model_bytes": breakdown["models"],
            }
        )
    return rows


def _column_files_rows(
    dataset: str,
    table: Table,
    workload: QueryWorkload,
    cell_sweep: Sequence[int],
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for cells in cell_sweep:
        index = ColumnFilesIndex(table, cells_per_dim=cells)
        timing = time_workload(index, workload)
        rows.append(
            {
                "index": "Column Files",
                "dataset": dataset,
                "knob": f"cells={cells}",
                "mean_ms": round(timing.mean_ms, 3),
                "dir_bytes": index.directory_bytes(),
            }
        )
    return rows


def _rtree_rows(
    dataset: str,
    table: Table,
    workload: QueryWorkload,
    capacity_sweep: Sequence[int],
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for capacity in capacity_sweep:
        index = RTreeIndex(table, node_capacity=capacity)
        timing = time_workload(index, workload)
        rows.append(
            {
                "index": "R-Tree",
                "dataset": dataset,
                "knob": f"capacity={capacity}",
                "mean_ms": round(timing.mean_ms, 3),
                "dir_bytes": index.directory_bytes(),
            }
        )
    return rows


def _dataset_rows(
    dataset: str,
    table: Table,
    *,
    n_queries: int,
    seed: int,
    cell_sweep: Sequence[int],
    capacity_sweep: Sequence[int],
) -> List[Dict[str, object]]:
    workload = standard_workloads(table, n_queries=n_queries, seed=seed)["range"]
    rows: List[Dict[str, object]] = []
    rows.extend(_coax_rows(dataset, table, workload, cell_sweep))
    rows.extend(_column_files_rows(dataset, table, workload, cell_sweep))
    rows.extend(_rtree_rows(dataset, table, workload, capacity_sweep))
    return rows


def run(
    n_rows: int = 20_000,
    n_queries: int = 20,
    seed: int = 3,
    cell_sweep: Sequence[int] = DEFAULT_CELL_SWEEP,
    capacity_sweep: Sequence[int] = DEFAULT_CAPACITY_SWEEP,
) -> ExperimentResult:
    """Reproduce the Figure 8 runtime/memory trade-off sweep."""
    rows: List[Dict[str, object]] = []
    rows.extend(
        _dataset_rows(
            "Airline",
            airline_table(n_rows),
            n_queries=n_queries,
            seed=seed,
            cell_sweep=cell_sweep,
            capacity_sweep=capacity_sweep,
        )
    )
    rows.extend(
        _dataset_rows(
            "OSM",
            osm_table(n_rows),
            n_queries=n_queries,
            seed=seed,
            cell_sweep=cell_sweep,
            capacity_sweep=capacity_sweep,
        )
    )
    return ExperimentResult(
        experiment="fig8",
        description="Runtime vs memory-overhead trade-off (paper Figure 8)",
        rows=rows,
        notes=[
            "paper shape: COAX reaches its best runtime with a directory orders of "
            "magnitude smaller than the R-Tree; grids show a sweet spot as cells grow",
        ],
    )
