"""Drift benchmark — frozen vs adaptive FD models (CLI: ``drift-bench``).

The fourth trajectory file next to ``BENCH_read.json``, ``BENCH_crud.json``
and ``BENCH_scale.json``: it measures what drift-aware model maintenance
(:mod:`repro.fd.maintenance`) buys on a drifting insert stream.

The workload is a regime change on a synthetic correlated table: the
stream's soft-FD intercept ramps away from the build-time line by
``drift_bands`` margin-band widths and then stabilises
(:func:`repro.data.synthetic.generate_drifting_batches`).  Three engines
ingest the *same* stream with periodic compaction:

* ``COAX (frozen)`` — models exactly as built, the paper's static setting:
  drifted records fail the stale margins, fall to the outlier index, and
  the primary fraction collapses;
* ``COAX (adaptive)`` — ``COAXConfig.maintenance.enabled``: the monitors
  stream every batch into the Bayesian posterior, Equation 9 (and the
  outside-margin excess) picks the refresh tier at each compaction, and
  refitted models follow the stream — the primary fraction recovers;
* ``ShardedCOAX (adaptive)`` — the same stream through the sharded engine
  with ONE shared monitor, proving coordinated refresh keeps every shard
  on identical groups.

After the stream, two KNN-derived range workloads over the full (build +
stream) data are executed through ``batch_range_query`` on every engine:
``range-predicted`` constrains only the FD-*predicted* attributes — the
workload Equation-2 translation exists for, and where stale models hurt
most (the frozen engine must fish most answers out of an outlier index
holding the bulk of the data) — and ``range`` constrains every attribute.
**Every result list is verified element-for-element against a full-scan
oracle** over the accumulated table before any number is reported —
adaptivity must change performance, never results.

The pass/fail gates are deterministic: the adaptive engine must retain a
strictly higher primary fraction than the frozen one, examine strictly
fewer rows per query on the ``range-predicted`` workload, and at least
one model refresh must actually have fired.  (Wall-clock speedups are
reported but not asserted — CI machines are noisy.)  ``smoke=True``
shrinks everything to CI scale and keeps all gates, so a maintenance
regression fails the pipeline next to the read-path, CRUD and scale
gates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bench.harness import (
    count_mismatches,
    drive_insert_stream,
    time_batched_queries,
)
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig, MaintenanceConfig
from repro.core.engine import ShardedCOAX
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.data.synthetic import (
    CorrelatedGroupSpec,
    SyntheticDatasetSpec,
    generate_correlated_dataset,
    generate_drifting_batches,
)
from repro.data.table import Table

__all__ = ["run"]

#: K of the KNN query generator (matches the other benchmarks).
K_NEIGHBOURS = 200


def _dataset_spec(n_rows: int, seed: int) -> SyntheticDatasetSpec:
    """One strong soft-FD group plus an uncorrelated attribute."""
    return SyntheticDatasetSpec(
        n_rows=n_rows,
        groups=(
            CorrelatedGroupSpec(
                attributes=("x", "y"),
                slopes=(2.0,),
                noise_scale=1.0,
                outlier_fraction=0.05,
                base_low=0.0,
                base_high=1000.0,
            ),
        ),
        independent_attributes=(("z", 0.0, 10.0),),
        seed=seed,
    )


def _combined_table(base: Table, batches: Sequence[Dict[str, np.ndarray]]) -> Table:
    """Build + stream rows in insert order (row id == position)."""
    return Table(
        {
            name: np.concatenate(
                [base.column(name)] + [batch[name] for batch in batches]
            )
            for name in base.schema
        }
    )


def _primary_fraction(index) -> float:
    """Share of main-structure rows in a primary index (engine-aware)."""
    if isinstance(index, ShardedCOAX):
        total = sum(shard.n_rows for shard in index.shards)
        if not total:
            return 0.0
        return (
            sum(shard.primary_ratio * shard.n_rows for shard in index.shards)
            / total
        )
    return index.primary_ratio


def _refresh_count(index) -> int:
    """Completed model-refresh epochs (0 for frozen engines)."""
    manager = index.maintenance
    if manager is None:
        return 0
    return max(
        (manager.monitor(name).epoch for name in manager.model_names),
        default=0,
    )


def run(
    n_rows: int = 40_000,
    n_queries: int = 512,
    seed: int = 33,
    n_batches: int = 20,
    rows_per_batch: int = 5_000,
    drift_bands: float = 6.0,
    hold_fraction: float = 0.7,
    compact_every: int = 1,
    batch_size: int = 256,
    n_shards: int = 4,
    smoke: bool = False,
    repeats: int = 3,
) -> ExperimentResult:
    """Run the drift benchmark and return its result table.

    ``drift_bands`` scales the total intercept shift in margin-band
    widths; ``hold_fraction`` is the tail share of the stream generated at
    the final (stabilised) shift.  ``smoke`` shrinks everything to CI
    scale and asserts the oracle identity plus the adaptive win on the
    primary fraction.
    """
    if smoke:
        n_rows = min(n_rows, 4_000)
        n_queries = min(n_queries, 128)
        n_batches = min(n_batches, 8)
        rows_per_batch = min(rows_per_batch, 1_000)
        n_shards = min(n_shards, 2)
        batch_size = min(batch_size, 128)
        repeats = min(repeats, 2)

    spec = _dataset_spec(n_rows, seed)
    base_table, _ = generate_correlated_dataset(spec)
    frozen_config = COAXConfig()
    adaptive_config = COAXConfig(
        maintenance=MaintenanceConfig(enabled=True, min_observations=256)
    )

    # The frozen build also learns the groups every engine shares, so all
    # three start from the identical build-time models.
    frozen = COAXIndex(base_table, config=frozen_config)
    groups = list(frozen.groups)
    if not groups:
        raise AssertionError("soft-FD detection found no groups on the synthetic table")
    model = groups[0].model_for(groups[0].dependents[0])
    band_width = model.eps_lb + model.eps_ub
    adaptive = COAXIndex(base_table, config=adaptive_config, groups=groups)
    engine = ShardedCOAX(
        base_table,
        config=EngineConfig(n_shards=n_shards, workers=1, coax=adaptive_config),
        groups=groups,
    )
    engines = [
        ("COAX (frozen)", frozen),
        ("COAX (adaptive)", adaptive),
        (f"ShardedCOAX (adaptive, {n_shards} shards)", engine),
    ]

    batches = generate_drifting_batches(
        spec,
        n_batches=n_batches,
        rows_per_batch=rows_per_batch,
        intercept_drift=drift_bands * band_width,
        hold_fraction=hold_fraction,
        seed=seed + 1,
    )
    combined = _combined_table(base_table, batches)

    rows: List[Dict[str, object]] = []
    notes: List[str] = [
        f"drift: intercept ramps {drift_bands:.1f} margin-band widths "
        f"({drift_bands * band_width:.1f}) over {n_batches} batches "
        f"(hold fraction {hold_fraction}), compaction every {compact_every} batches"
    ]

    for name, index in engines:
        stream = drive_insert_stream(index, batches, compact_every=compact_every)
        rows.append(
            {
                "dataset": "synthetic-drift",
                "phase": "stream",
                "engine": name,
                "rows_inserted": int(stream["rows_inserted"]),
                "seconds": round(stream["seconds"], 3),
                "rows_per_s": int(stream["rows_inserted"] / max(stream["seconds"], 1e-9)),
                "compactions": int(stream["compactions"]),
                "model_refreshes": _refresh_count(index),
                "primary_fraction": round(_primary_fraction(index), 4),
            }
        )

    predicted_dims = tuple(frozen.build_report.predicted_dimensions)
    workloads = {
        "range-predicted": list(
            generate_knn_queries(
                combined,
                WorkloadConfig(
                    n_queries=n_queries,
                    k_neighbours=K_NEIGHBOURS,
                    dimensions=predicted_dims,
                    seed=seed + 2,
                ),
            )
        ),
        "range": list(
            generate_knn_queries(
                combined,
                WorkloadConfig(
                    n_queries=n_queries, k_neighbours=K_NEIGHBOURS, seed=seed + 3
                ),
            )
        ),
    }
    # Full-scan oracle over the accumulated table: row id == position for
    # the whole build + stream history, so select() positions ARE the
    # expected row ids.
    oracle_results = {
        workload_name: [combined.select(query) for query in queries]
        for workload_name, queries in workloads.items()
    }

    latency: Dict[tuple, float] = {}
    examined: Dict[tuple, float] = {}
    for name, index in engines:
        for workload_name, queries in workloads.items():
            index.stats.reset()
            seconds, results = time_batched_queries(
                index, queries, batch_size, repeats
            )
            mismatched = count_mismatches(
                oracle_results[workload_name], results
            )
            if mismatched:
                raise AssertionError(
                    f"{name} diverged from the full-scan oracle on "
                    f"{mismatched}/{len(queries)} {workload_name} queries"
                )
            latency[(name, workload_name)] = seconds
            examined[(name, workload_name)] = index.stats.rows_examined / max(
                index.stats.queries, 1
            )
            rows.append(
                {
                    "dataset": "synthetic-drift",
                    "phase": "query",
                    "engine": name,
                    "workload": workload_name,
                    "queries": len(queries),
                    "seconds": round(seconds, 4),
                    "mean_ms": round(seconds / len(queries) * 1e3, 4),
                    "rows_examined_per_q": round(examined[(name, workload_name)], 1),
                    "primary_fraction": round(_primary_fraction(index), 4),
                    "mismatched_queries": 0,
                }
            )
    engine.close()

    frozen_fraction = _primary_fraction(frozen)
    adaptive_fraction = _primary_fraction(adaptive)
    notes.append(
        "every result verified element-for-element against the full-scan "
        "oracle over the accumulated table (adaptivity changes performance, "
        "never results)"
    )
    notes.append(
        f"primary fraction after the stream: frozen {frozen_fraction:.1%} "
        f"vs adaptive {adaptive_fraction:.1%} "
        f"({_refresh_count(adaptive)} model refreshes)"
    )
    for workload_name in workloads:
        speedup = latency[("COAX (frozen)", workload_name)] / max(
            latency[("COAX (adaptive)", workload_name)], 1e-9
        )
        exam_ratio = examined[("COAX (frozen)", workload_name)] / max(
            examined[("COAX (adaptive)", workload_name)], 1e-9
        )
        notes.append(
            f"adaptive vs frozen on {workload_name}: {speedup:.2f}x wall clock, "
            f"{exam_ratio:.2f}x rows examined"
        )

    if adaptive_fraction <= frozen_fraction:
        raise AssertionError(
            f"adaptive maintenance did not recover the primary fraction "
            f"(adaptive {adaptive_fraction:.1%} <= frozen {frozen_fraction:.1%})"
        )
    if examined[("COAX (adaptive)", "range-predicted")] >= examined[
        ("COAX (frozen)", "range-predicted")
    ]:
        raise AssertionError(
            "adaptive maintenance did not reduce the work of "
            "predicted-attribute queries"
        )
    if _refresh_count(adaptive) < 1 or _refresh_count(engine) < 1:
        raise AssertionError("no model refresh fired on the drifting stream")
    if smoke:
        notes.append(
            "smoke mode: asserted oracle identity, active model refresh, the "
            "adaptive primary-fraction win and the rows-examined win"
        )

    return ExperimentResult(
        experiment="drift",
        description="Drift — frozen vs adaptive FD models on a drifting insert stream",
        rows=rows,
        notes=notes,
    )
