"""Figure 4a — non-uniform distribution of page sizes in a 2D grid layout.

The paper motivates quantile cell boundaries by showing the histogram of
cell ("page") occupancies of a 2D grid over skewed data: most cells are
(nearly) empty while a few are huge.  This driver builds a uniform 2D grid
and a quantile 2D grid over the OSM coordinates and reports the occupancy
histogram plus summary statistics of both, demonstrating the skew the paper
plots and the effect of distribution-aware boundaries (Figure 4b/4c).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bench.experiments.datasets import osm_table
from repro.bench.reporting import ExperimentResult
from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.uniform_grid import UniformGridIndex

__all__ = ["run"]


def _histogram_rows(label: str, cell_sizes: np.ndarray, n_bins: int) -> List[Dict[str, object]]:
    if len(cell_sizes) == 0:
        return []
    edges = np.linspace(0, max(float(cell_sizes.max()), 1.0), n_bins + 1)
    counts, _ = np.histogram(cell_sizes, bins=edges)
    rows = []
    for i, count in enumerate(counts):
        rows.append(
            {
                "layout": label,
                "page_length_low": int(edges[i]),
                "page_length_high": int(edges[i + 1]),
                "cells": int(count),
            }
        )
    return rows


def run(n_rows: int = 30_000, cells_per_dim: int = 32, n_bins: int = 10) -> ExperimentResult:
    """Reproduce the page-length distribution of Figure 4a."""
    table = osm_table(n_rows)
    dims = ("Latitude", "Longitude")
    uniform = UniformGridIndex(table, cells_per_dim=cells_per_dim, dimensions=dims)
    quantile = SortedCellGridIndex(
        table, cells_per_dim=cells_per_dim, dimensions=dims + ("Id",), sort_dimension="Id"
    )
    uniform_sizes = uniform.cell_sizes()
    quantile_sizes = quantile.cell_sizes()

    rows: List[Dict[str, object]] = []
    rows.extend(_histogram_rows("uniform 2D grid", uniform_sizes, n_bins))
    rows.extend(_histogram_rows("quantile 2D grid", quantile_sizes, n_bins))

    summary = [
        {
            "layout": label,
            "page_length_low": "summary",
            "page_length_high": "",
            "cells": int(len(sizes)),
            "empty_cells": int(np.sum(sizes == 0)),
            "max_page": int(sizes.max()) if len(sizes) else 0,
            "std_page": round(float(sizes.std()), 2) if len(sizes) else 0.0,
        }
        for label, sizes in (("uniform 2D grid", uniform_sizes), ("quantile 2D grid", quantile_sizes))
    ]
    rows.extend(summary)
    return ExperimentResult(
        experiment="fig4",
        description="Page-length distribution of 2D grid layouts (paper Figure 4a)",
        rows=rows,
        notes=[
            "the uniform grid shows the long-tailed page-size distribution of Figure 4a",
            "quantile boundaries (Figure 4c) cut the standard deviation of page sizes",
        ],
    )
