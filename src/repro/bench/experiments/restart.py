"""Restart benchmark — cold-start latency of the v6 archive (CLI: ``restart-bench``).

The operational half of the format-v6 story: a serving process that dies
should come back in O(metadata), not O(data).  The legacy (v5) ``.npz``
archive forces a copy-load — every column is decompressed into fresh
heap pages and every grid is rebuilt from its sorted order — while the
columnar (v6) directory is attached with copy-on-write ``np.memmap`` and
its structured section reattaches the saved grids without evaluating a
single FD model, so the kernel page cache (still warm from the previous
incarnation, and shared with any sibling process) does the rest.

The driver builds one sharded engine, saves it in both layouts, then
times ``load_engine`` on each (minimum over ``repeats`` attempts, a
fresh load per attempt) and runs a probe workload through every loaded
engine, verifying the results element-for-element against the pre-save
engine.  Rows report ``cold_start_s`` per format plus the v6-over-npz
speedup; the first post-load probe batch is timed separately so the
lazily-paged mmap path is visible rather than hidden.

``smoke=True`` shrinks the build to CI scale and asserts that the v6
cold start beats the npz copy-load and that both loaded engines answer
the probes bit-identically — a restart regression fails the pipeline
next to the read-path and scale gates.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.experiments.datasets import airline_table, standard_workloads
from repro.bench.harness import count_mismatches
from repro.bench.reporting import ExperimentResult
from repro.core.config import COAXConfig, EngineConfig
from repro.core.engine import ShardedCOAX
from repro.io.persistence import load_engine, save_index

__all__ = ["run"]


def _tree_bytes(path: Path) -> int:
    """Total on-disk size of an archive (file or directory)."""
    if path.is_file():
        return path.stat().st_size
    return sum(item.stat().st_size for item in path.rglob("*") if item.is_file())


def run(
    n_rows: int = 1_000_000,
    n_shards: int = 8,
    n_queries: int = 64,
    seed: int = 23,
    executor: Optional[str] = None,
    smoke: bool = False,
    repeats: int = 3,
) -> ExperimentResult:
    """Run the restart benchmark and return its result table.

    ``executor`` overrides the scatter backend of every loaded engine
    (``load_engine``'s override path); ``None`` keeps whatever the
    archive remembers.  ``smoke`` shrinks everything to CI scale and
    asserts the v6 mmap cold start beats the legacy copy-load.
    """
    if smoke:
        n_rows = min(n_rows, 6_000)
        n_shards = min(n_shards, 2)
        n_queries = min(n_queries, 32)
        repeats = min(repeats, 2)

    table = airline_table(n_rows, seed=seed)
    engine = ShardedCOAX(
        table,
        config=EngineConfig(n_shards=n_shards, workers=n_shards, coax=COAXConfig()),
    )
    probes = list(standard_workloads(table, n_queries=n_queries, seed=seed + 3)["range"])
    expected = engine.batch_range_query(probes)
    engine.close()

    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="coax-restart-"))
    try:
        archives = {
            "v6-columnar": save_index(engine, workdir / "engine.coax"),
            "v5-npz": save_index(engine, workdir / "engine.npz", layout="npz"),
        }
        cold_start: Dict[str, float] = {}
        for format_name, path in archives.items():
            best_load = float("inf")
            best_probe = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                loaded = load_engine(path, executor=executor)
                load_seconds = time.perf_counter() - start
                start = time.perf_counter()
                got = loaded.batch_range_query(probes)
                probe_seconds = time.perf_counter() - start
                mismatched = count_mismatches(expected, got)
                if mismatched:
                    raise AssertionError(
                        f"{format_name} restart diverged from the pre-save engine "
                        f"on {mismatched}/{len(probes)} probe queries"
                    )
                loaded.close()
                best_load = min(best_load, load_seconds)
                best_probe = min(best_probe, probe_seconds)
            cold_start[format_name] = best_load
            rows.append(
                {
                    "dataset": "Airline",
                    "phase": "restart",
                    "format": format_name,
                    "n_rows": n_rows,
                    "shards": n_shards,
                    "executor": executor or "thread",
                    "archive_mb": round(_tree_bytes(path) / 1e6, 2),
                    "cold_start_s": round(best_load, 4),
                    "first_probe_batch_s": round(best_probe, 4),
                    "probe_queries": len(probes),
                    "mismatched_queries": 0,
                }
            )
        speedup = cold_start["v5-npz"] / max(cold_start["v6-columnar"], 1e-9)
        for row in rows:
            if row["format"] == "v6-columnar":
                row["speedup_vs_npz"] = round(speedup, 2)
        notes.append(
            "cold_start_s is the minimum load_engine wall time over "
            f"{repeats} fresh loads; every loaded engine verified "
            "element-for-element against the pre-save engine"
        )
        notes.append(
            f"v6 mmap cold start is {speedup:.1f}x faster than the v5 npz copy-load "
            f"at {n_rows:,} rows / {n_shards} shards"
        )
        if smoke and speedup <= 1.0:
            raise AssertionError(
                f"v6 mmap cold start ({cold_start['v6-columnar']:.4f}s) did not beat "
                f"the v5 npz copy-load ({cold_start['v5-npz']:.4f}s) in smoke mode"
            )
        if smoke:
            notes.append("smoke mode: asserted v6 cold start beats the npz copy-load")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return ExperimentResult(
        experiment="restart",
        description="Restart — v6 mmap cold start vs legacy npz copy-load",
        rows=rows,
        notes=notes,
    )
