"""Aggregate/kNN executor benchmark — pushdown vs materialize-then-reduce.

The executor refactor's headline claim is that COUNT/SUM/MIN/MAX/AVG over
a rectangle never needs the candidate row ids: the grid kernels fold
covered runs in place (run lengths, prefix-sum differences, segment
reductions) and only boundary cells gather.  This driver measures exactly
that claim on the Airline and OSM datasets (``BENCH_agg.json``):

* **aggregate workload** — rectangles at ~10% selectivity on each
  dataset's primary sort dimension (exact by bisection, so covered runs
  fold id-free), each op executed two ways on the *same* index: the
  aggregate executor (``batch_aggregate``) vs the materialize-then-reduce
  baseline (``batch_range_query`` + NumPy reduction over the gathered
  column).  Results are verified against each other per query — COUNT
  exactly, the float folds to 1e-9 — before any number is reported.
* **kNN workload** — ``knn`` ring search vs the brute-force baseline
  (full-column distances + one exact ``lexsort``), verified id-for-id
  including the ``(distance, row_id)`` tie-break.

``rows_examined`` is the honest work metric: the aggregate path counts
only the rows it actually gathers (boundary cells), the baseline counts
its materialised candidates.  ``smoke=True`` shrinks to CI scale and
asserts the deterministic gate — for COUNT/SUM/AVG the pushdown examines
at least :data:`SMOKE_EXAMINED_FACTOR` x fewer rows than the baseline —
so a regression that silently reintroduces id materialisation (or breaks
run coverage) fails the pipeline, not just a latency chart.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.experiments.datasets import airline_table, osm_table
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.executors import Aggregate
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table

__all__ = ["run"]

#: Aggregate ops folded per dataset (COUNT carries no value column).
AGG_OPS: Tuple[str, ...] = ("count", "sum", "avg", "min", "max")

#: Ops whose fold never gathers covered runs (COUNT folds run lengths,
#: SUM/AVG fold prefix-sum differences); MIN/MAX gather run *values* and
#: are reported but not gated.
FOLD_ONLY_OPS: Tuple[str, ...] = ("count", "sum", "avg")

#: Smoke gate: pushdown must examine at least this factor fewer rows than
#: materialize-then-reduce on the ~10% selectivity workload.
SMOKE_EXAMINED_FACTOR = 5.0

#: Target selectivity of the aggregate rectangles.
SELECTIVITY = 0.10

#: Per-dataset (value column, kNN point dimensions).  The aggregate
#: rectangles constrain the built index's *primary sort dimension*
#: (``build_report.primary_sort_dimension`` — FD detection is
#: data-dependent, so it cannot be hard-coded): exact by bisection inside
#: every cell, so covered runs fold id-free, while a grid-axis constraint
#: would leave boundary cells on the gather path and understate the
#: pushdown.  kNN points mix a grid axis with an FD-predicted axis on
#: Airline (exercising the ring search's Equation-2 translation) and use
#: the classic spatial pair on OSM.
DATASET_PLAN = {
    "Airline": ("AirTime", ("Distance", "ScheduledArrTime")),
    "OSM": ("Longitude", ("Latitude", "Longitude")),
}


def _selectivity_queries(
    table: Table, dim: str, n_queries: int, rng: np.random.Generator
) -> List[Rectangle]:
    """Rectangles covering ~``SELECTIVITY`` of the rows along ``dim``."""
    values = np.sort(np.asarray(table.column(dim), dtype=np.float64))
    n = len(values)
    width = max(int(n * SELECTIVITY), 1)
    starts = rng.integers(0, max(n - width, 1), size=n_queries)
    return [
        Rectangle({dim: Interval(float(values[s]), float(values[min(s + width, n - 1)]))})
        for s in starts
    ]


def _reduce_baseline(
    op: str, ids_per_query: List[np.ndarray], values: Optional[np.ndarray]
) -> np.ndarray:
    """The materialize-then-reduce answer: NumPy reduction per id set."""
    out = np.empty(len(ids_per_query), dtype=np.float64)
    for slot, ids in enumerate(ids_per_query):
        if op == "count":
            out[slot] = len(ids)
        elif len(ids) == 0:
            out[slot] = 0.0 if op == "sum" else np.nan
        else:
            gathered = values[ids]
            if op == "sum":
                out[slot] = np.sum(gathered)
            elif op == "avg":
                out[slot] = np.sum(gathered) / len(gathered)
            elif op == "min":
                out[slot] = np.min(gathered)
            else:
                out[slot] = np.max(gathered)
    return out


def _brute_knn(
    table: Table, point: Dict[str, float], k: int
) -> np.ndarray:
    """Brute-force kNN baseline: full-column distances, one exact sort."""
    n = table.n_rows
    keys = np.zeros(n, dtype=np.float64)
    for dim, target in point.items():
        diff = np.asarray(table.column(dim), dtype=np.float64) - float(target)
        keys += diff * diff
    ids = np.arange(n, dtype=np.int64)
    return ids[np.lexsort((ids, keys))[:k]]


def run(
    n_rows: int = 1_000_000,
    n_queries: int = 128,
    n_points: int = 32,
    k_neighbours: int = 50,
    seed: int = 13,
    smoke: bool = False,
    repeats: int = 2,
) -> ExperimentResult:
    """Run the aggregate/kNN executor benchmark and return its table.

    Every mode is timed ``repeats`` times and the minimum reported.
    ``smoke`` shrinks to CI scale and asserts the examined-rows gate (see
    the module docstring); result verification runs in every mode.
    """
    if smoke:
        n_rows = min(n_rows, 8_000)
        n_queries = min(n_queries, 48)
        n_points = min(n_points, 8)
    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    gate_failures: List[str] = []

    for dataset, maker, dataset_seed in (
        ("Airline", airline_table, seed),
        ("OSM", osm_table, seed + 1),
    ):
        table = maker(n_rows, seed=dataset_seed)
        rng = np.random.default_rng(dataset_seed)
        value_col, point_dims = DATASET_PLAN[dataset]
        index = COAXIndex(table, config=COAXConfig())
        sel_dim = index.build_report.primary_sort_dimension
        queries = _selectivity_queries(table, sel_dim, n_queries, rng)
        notes.append(f"{dataset}: aggregate rectangles constrain {sel_dim!r}")

        # Materialize-then-reduce baseline: ids once, then every reduction.
        index.batch_range_query(queries[: min(8, n_queries)])  # warm-up
        examined_before = index.stats.rows_examined
        base_seconds = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            ids_per_query = index.batch_range_query(queries)
            base_seconds = min(base_seconds, time.perf_counter() - start)
        base_examined = (index.stats.rows_examined - examined_before) // max(repeats, 1)
        column = np.asarray(table.column(value_col), dtype=np.float64)

        for op in AGG_OPS:
            spec = Aggregate(op, None if op == "count" else value_col)
            baseline = _reduce_baseline(op, ids_per_query, column)
            reduce_seconds = np.inf
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                _reduce_baseline(op, ids_per_query, column)
                reduce_seconds = min(reduce_seconds, time.perf_counter() - start)

            index.batch_aggregate(queries[: min(8, n_queries)], spec)  # warm-up
            examined_before = index.stats.rows_examined
            push_seconds = np.inf
            pushed = None
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                pushed = index.batch_aggregate(queries, spec)
                push_seconds = min(push_seconds, time.perf_counter() - start)
            push_examined = (
                index.stats.rows_examined - examined_before
            ) // max(repeats, 1)

            if op in ("count", "min", "max"):
                equal = np.array_equal(pushed, baseline, equal_nan=True)
            else:
                equal = np.allclose(pushed, baseline, rtol=1e-9, atol=1e-9, equal_nan=True)
            if not equal:
                raise AssertionError(
                    f"aggregate pushdown diverged from materialize-then-reduce on "
                    f"{dataset}/{op}"
                )
            total_base = base_seconds + reduce_seconds
            examined_ratio = base_examined / max(push_examined, 1)
            rows.append(
                {
                    "dataset": dataset,
                    "workload": f"agg:{op}",
                    "queries": len(queries),
                    "pushdown_s": round(push_seconds, 4),
                    "materialize_s": round(total_base, 4),
                    "speedup": round(total_base / max(push_seconds, 1e-9), 2),
                    "pushdown_rows_examined": int(push_examined),
                    "materialize_rows_examined": int(base_examined),
                    "examined_ratio": round(examined_ratio, 1),
                }
            )
            if smoke and op in FOLD_ONLY_OPS and examined_ratio < SMOKE_EXAMINED_FACTOR:
                gate_failures.append(
                    f"{dataset}/{op}: examined ratio {examined_ratio:.1f} < "
                    f"{SMOKE_EXAMINED_FACTOR}"
                )

        # kNN: ring search vs brute force, id-for-id including tie-breaks.
        sample = rng.integers(0, table.n_rows, size=n_points)
        points = [
            {dim: float(np.asarray(table.column(dim))[row]) for dim in point_dims}
            for row in sample
        ]
        brute = [_brute_knn(table, point, k_neighbours) for point in points]
        brute_seconds = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            for point in points:
                _brute_knn(table, point, k_neighbours)
            brute_seconds = min(brute_seconds, time.perf_counter() - start)
        examined_before = index.stats.rows_examined
        ring_seconds = np.inf
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            ring = [index.knn(point, k_neighbours) for point in points]
            ring_seconds = min(ring_seconds, time.perf_counter() - start)
        ring_examined = (index.stats.rows_examined - examined_before) // max(repeats, 1)
        for got, want in zip(ring, brute):
            if not np.array_equal(got, want):
                raise AssertionError(f"kNN ring search diverged from brute force on {dataset}")
        rows.append(
            {
                "dataset": dataset,
                "workload": f"knn:k={k_neighbours}",
                "queries": len(points),
                "pushdown_s": round(ring_seconds, 4),
                "materialize_s": round(brute_seconds, 4),
                "speedup": round(brute_seconds / max(ring_seconds, 1e-9), 2),
                "pushdown_rows_examined": int(ring_examined),
                "materialize_rows_examined": int(table.n_rows * len(points)),
                "examined_ratio": round(
                    table.n_rows * len(points) / max(ring_examined, 1), 1
                ),
            }
        )

    notes.append(
        "aggregate pushdown verified against materialize-then-reduce per query "
        "(COUNT/MIN/MAX exactly, SUM/AVG to 1e-9); kNN verified id-for-id vs brute force"
    )
    if smoke:
        if gate_failures:
            raise AssertionError(
                "aggregate pushdown examined-rows gate failed: " + "; ".join(gate_failures)
            )
        notes.append(
            f"smoke mode: asserted pushdown examines >= {SMOKE_EXAMINED_FACTOR}x fewer "
            "rows than materialize-then-reduce for COUNT/SUM/AVG"
        )

    return ExperimentResult(
        experiment="agg",
        description="Aggregate/kNN executors — pushdown vs materialize-then-reduce",
        rows=rows,
        notes=notes,
    )
