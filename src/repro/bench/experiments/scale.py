"""Scale benchmark — sharded scatter-gather execution (CLI: ``scale-bench``).

The third trajectory file next to ``BENCH_read.json`` and
``BENCH_crud.json``: it measures how batch-query throughput moves with the
shard and worker count of the :class:`~repro.core.engine.ShardedCOAX`
engine on the paper's Airline workloads.

Three Airline workloads are measured, all from the repository's standard
generators:

* ``range`` — KNN-derived range queries over the *indexed* attributes
  (the dimensions the engine actually serves: predictors plus
  non-correlated attributes).  Per-dimension constraints are selective
  here, so this is where range partitioning pays: per-shard pruning plus
  the finer per-shard grid granularity compound.
* ``range-translated`` — the paper's all-attribute KNN workload
  (Section 8.1.2), which also constrains the FD-predicted attributes and
  therefore exercises Equation-2 translation through the scatter path.
  Its candidates are dominated by margin-driven post-filter work that no
  partitioning can remove, so its scaling is structurally more modest —
  reported for transparency.
* ``point`` — the paper's point workload; pruning is near-perfect but a
  point lookup is microseconds of work, so per-shard dispatch overhead
  dominates on few cores (the row that shows what scatter *costs*).

For every ``(n_shards, workers)`` combination the driver builds the
engine (range-partitioned, FD groups learned once and shared — build
time is reported, and parallel builds use the same pool), runs every
workload through ``batch_range_query``, reports throughput, mean
latency, the speedup over the 1-shard/1-worker engine and the unsharded
COAX baseline, and the average number of shards pruned per query — and
verifies every result list element-for-element against an unsharded COAX
oracle before any number is reported.

``executor`` selects the scatter backend (``"thread"`` or ``"process"``)
and is stamped on every engine row, so thread and process sweeps of the
same grid can sit side by side in one artifact.  The process backend
scatters over OS processes that attach to the engine's mmap-backed v6
shard spills, sidestepping the GIL on the NumPy-light portions of the
scatter path.

A mixed-CRUD phase then drives interleaved insert/delete/update/compact
rounds against the sharded engine and the unsharded oracle side by side
and asserts bit-identical query results after every round — the
correctness half of the scaling claim.

``smoke=True`` shrinks everything to CI scale and asserts the identity
checks (plus that range-partition pruning actually skips shards), so a
sharding regression fails the pipeline next to the read-path and CRUD
gates.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.experiments.datasets import airline_table, standard_workloads
from repro.bench.harness import count_mismatches, time_batched_queries
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig
from repro.core.engine import ShardedCOAX
from repro.data.queries import WorkloadConfig, generate_knn_queries, generate_point_queries

__all__ = ["run"]

#: Shard counts swept by the default configuration.
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Worker-pool sizes swept by the default configuration.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: K floor of the KNN query generator (matches the standard workloads).
K_NEIGHBOURS = 200


def _k_neighbours(n_rows: int) -> int:
    """K of the KNN query generator: ~1% selectivity, floored at 200.

    A fixed K means per-query work *shrinks* as the table grows and the
    sweep degenerates into measuring per-shard dispatch overhead; scaling
    K with the table keeps the workload's selectivity constant, the way
    the paper's workloads scale with dataset size.
    """
    return max(K_NEIGHBOURS, n_rows // 100)


def _crud_phase(
    table,
    groups,
    config: COAXConfig,
    n_shards: int,
    workers: int,
    executor: str,
    seed: int,
    rounds: int,
) -> Dict[str, object]:
    """Interleaved CRUD on the engine vs the unsharded oracle; must agree.

    Each round inserts a batch, deletes a random live subset, updates
    another, runs the probe workload on both sides and compares
    element-for-element; one mid-stream compaction exercises the
    per-shard reclaim path.  Returns the row reporting the phase.
    """
    rng = np.random.default_rng(seed)
    oracle = COAXIndex(table, config=config, groups=list(groups))
    engine = ShardedCOAX(
        table,
        config=EngineConfig(
            n_shards=n_shards, workers=workers, executor=executor, coax=config
        ),
        groups=list(groups),
    )
    probes = list(standard_workloads(table, n_queries=64, seed=seed + 3)["range"])
    schema = list(table.schema)
    lows, highs = table.bounds()
    checked = 0
    mismatched = 0
    ops = 0
    for round_no in range(rounds):
        k = int(rng.integers(50, 200))
        batch = {
            name: rng.uniform(lows[name], highs[name], size=k) for name in schema
        }
        ids_a = oracle.insert_batch(batch)
        ids_b = engine.insert_batch(batch)
        assert np.array_equal(ids_a, ids_b), "row-id assignment diverged"
        live = oracle.live_row_ids()
        pending = oracle.delta.row_ids
        candidates = np.concatenate([live, pending])
        doomed = rng.choice(
            candidates, size=min(len(candidates), int(rng.integers(20, 120))), replace=False
        )
        oracle.delete_batch(doomed)
        engine.delete_batch(doomed)
        survivors = np.setdiff1d(candidates, doomed)
        targets = np.unique(
            rng.choice(survivors, size=min(len(survivors), int(rng.integers(10, 60))), replace=False)
        )
        update = {
            name: rng.uniform(lows[name], highs[name], size=len(targets))
            for name in schema
        }
        oracle.update_batch(targets, update)
        engine.update_batch(targets, update)
        ops += k + len(doomed) + len(targets)
        if round_no == rounds // 2:
            oracle.compact()
            engine.compact()
        expected = oracle.batch_range_query(probes)
        got = engine.batch_range_query(probes)
        mismatched += count_mismatches(expected, got)
        checked += len(probes)
    engine.close()
    if mismatched:
        raise AssertionError(
            f"sharded CRUD diverged from the unsharded oracle on "
            f"{mismatched}/{checked} probe queries"
        )
    return {
        "dataset": "Airline",
        "phase": "crud",
        "shards": n_shards,
        "workers": workers,
        "executor": executor,
        "mutations": ops,
        "probe_queries": checked,
        "mismatched_queries": mismatched,
    }


def run(
    n_rows: int = 200_000,
    n_queries: int = 1024,
    seed: int = 17,
    shard_counts: Optional[Sequence[int]] = None,
    worker_counts: Optional[Sequence[int]] = None,
    batch_size: int = 1024,
    executor: str = "thread",
    smoke: bool = False,
    repeats: int = 3,
) -> ExperimentResult:
    """Run the scale benchmark and return its result table.

    Every combination is timed ``repeats`` times with the minimum
    reported.  ``executor`` selects the scatter backend for every engine
    built by the sweep.  ``smoke`` shrinks the dataset/workload to CI
    scale, keeps the full oracle-identity verification, and asserts that
    range partitioning prunes shards on the range workload.
    """
    if smoke:
        n_rows = min(n_rows, 6_000)
        n_queries = min(n_queries, 256)
        shard_counts = tuple(shard_counts) if shard_counts else (1, 4)
        worker_counts = tuple(worker_counts) if worker_counts else (1, 2)
        batch_size = min(batch_size, 256)
        repeats = min(repeats, 2)
        crud_rounds = 2
    else:
        shard_counts = tuple(shard_counts) if shard_counts else DEFAULT_SHARD_COUNTS
        worker_counts = tuple(worker_counts) if worker_counts else DEFAULT_WORKER_COUNTS
        crud_rounds = 3

    table = airline_table(n_rows, seed=seed)
    config = COAXConfig()
    rows: List[Dict[str, object]] = []
    notes: List[str] = []

    # Unsharded oracle: ground truth for every engine result, and the
    # flat-COAX baseline row.  Built first so the ``range`` workload can
    # target the attributes the index actually serves.
    oracle = COAXIndex(table, config=config)
    groups = list(oracle.groups)
    indexed_dims = tuple(oracle.build_report.indexed_dimensions)
    workloads: Dict[str, List] = {
        "range": list(
            generate_knn_queries(
                table,
                WorkloadConfig(
                    n_queries=n_queries,
                    k_neighbours=_k_neighbours(n_rows),
                    dimensions=indexed_dims,
                    seed=seed,
                ),
            )
        ),
        "range-translated": list(
            generate_knn_queries(
                table,
                WorkloadConfig(
                    n_queries=n_queries,
                    k_neighbours=_k_neighbours(n_rows),
                    seed=seed,
                ),
            )
        ),
        "point": list(
            generate_point_queries(
                table, WorkloadConfig(n_queries=n_queries, seed=seed + 1)
            )
        ),
    }
    oracle_results: Dict[str, List[np.ndarray]] = {}
    for workload_name, queries in workloads.items():
        oracle_seconds, oracle_result = time_batched_queries(oracle, queries, batch_size, repeats)
        oracle_results[workload_name] = oracle_result
        rows.append(
            {
                "dataset": "Airline",
                "phase": "query",
                "engine": "COAX (unsharded)",
                "workload": workload_name,
                "shards": 1,
                "workers": 1,
                "executor": "serial",
                "queries": len(queries),
                "seconds": round(oracle_seconds, 4),
                "queries_per_s": int(len(queries) / max(oracle_seconds, 1e-9)),
                "mismatched_queries": 0,
            }
        )

    baseline_seconds: Dict[str, float] = {}
    pruned_on_range: Dict[int, float] = {}
    speedups: Dict[Tuple[str, int, int], float] = {}
    # The 1-shard/1-worker engine is the speedup denominator of every row,
    # so it is always measured first — even when the requested grid does
    # not contain it (e.g. ``--shards 2 4``) or lists it out of order.
    grid = [(1, 1)]
    for n_shards in shard_counts:
        # With one shard there is nothing to scatter; higher worker counts
        # would only duplicate the row.
        effective_workers = worker_counts if n_shards > 1 else worker_counts[:1]
        grid.extend(
            (n_shards, workers)
            for workers in effective_workers
            if (n_shards, workers) != (1, 1)
        )
    for n_shards, workers in grid:
        engine_config = EngineConfig(
            n_shards=n_shards, workers=workers, executor=executor, coax=config
        )
        build_start = time.perf_counter()
        engine = ShardedCOAX(table, config=engine_config, groups=groups)
        build_seconds = time.perf_counter() - build_start
        for workload_name, queries in workloads.items():
            engine.stats.reset()
            seconds, results = time_batched_queries(engine, queries, batch_size, repeats)
            mismatched = count_mismatches(oracle_results[workload_name], results)
            if mismatched:
                raise AssertionError(
                    f"sharded results diverged from the unsharded oracle on "
                    f"{workload_name} with {n_shards} shards / {workers} workers "
                    f"({mismatched} queries)"
                )
            if (n_shards, workers) == (1, 1):
                baseline_seconds[workload_name] = seconds
            speedup = baseline_seconds[workload_name] / max(seconds, 1e-9)
            speedups[(workload_name, n_shards, workers)] = speedup
            pruned_per_query = engine.stats.shards_pruned / max(
                engine.stats.queries, 1
            )
            if workload_name == "range":
                pruned_on_range[n_shards] = pruned_per_query
            rows.append(
                {
                    "dataset": "Airline",
                    "phase": "query",
                    "engine": "ShardedCOAX",
                    "workload": workload_name,
                    "shards": n_shards,
                    "workers": workers,
                    "executor": executor,
                    "build_s": round(build_seconds, 3),
                    "queries": len(queries),
                    "seconds": round(seconds, 4),
                    "queries_per_s": int(len(queries) / max(seconds, 1e-9)),
                    "mean_ms": round(seconds / len(queries) * 1e3, 4),
                    "speedup_vs_1shard": round(speedup, 2),
                    "shards_pruned_per_q": round(pruned_per_query, 2),
                    "mismatched_queries": 0,
                }
            )
        engine.close()

    rows.append(
        _crud_phase(
            table,
            groups,
            config,
            n_shards=max(shard_counts),
            workers=max(worker_counts),
            executor=executor,
            seed=seed + 29,
            rounds=crud_rounds,
        )
    )

    notes.append(
        "every sharded result verified element-for-element against the unsharded "
        "COAX oracle (query phase and mixed-CRUD phase)"
    )
    notes.append(f"scatter backend: {executor}")
    notes.append(
        f"host cpu cores: {os.cpu_count()} — worker parallelism needs cores; "
        "on fewer cores than workers the speedup is algorithmic "
        "(shard pruning + finer per-shard grids) and extra workers only add "
        "dispatch overhead"
    )
    best_range = max(
        (value for (workload, _, _), value in speedups.items() if workload == "range"),
        default=1.0,
    )
    notes.append(
        f"best range-workload speedup vs the 1-shard engine: {best_range:.2f}x"
    )
    if smoke:
        multi = [count for count in shard_counts if count > 1]
        if multi and pruned_on_range.get(multi[0], 0.0) <= 0.0:
            raise AssertionError(
                "range partitioning pruned no shards on the range workload in smoke mode"
            )
        notes.append(
            "smoke mode: asserted oracle identity and active shard pruning"
        )

    return ExperimentResult(
        experiment="scale",
        description="Scale — sharded scatter-gather execution vs the unsharded engine",
        rows=rows,
        notes=notes,
    )
