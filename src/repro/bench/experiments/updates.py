"""Update benchmark — insert throughput and query latency under writes.

The paper leaves updates as future work; this driver measures the delta
store that implements them (``repro.core.delta``):

* sequential ``insert()`` vs vectorised ``insert_batch()`` throughput
  (the acceptance bar is a >= 20x batch speedup at 100k rows);
* query latency with a populated delta store (the pending scan is one
  vectorised rectangle check, not a per-row Python loop);
* incremental ``compact()`` vs a from-scratch rebuild — wall clock and a
  result-identity check on both the Airline and the OSM dataset;
* a mixed read/write workload with threshold-triggered auto-compaction.

Sequential-insert time is measured over a capped sample and scaled
linearly (per-insert cost is amortised O(1)), so the driver stays usable
at the default 100k-insert volume; the note records the cap.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List

import numpy as np

from repro.bench.experiments.datasets import airline_table, osm_table, standard_workloads
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.table import Table

__all__ = ["run"]

#: Cap on the rows actually timed on the sequential-insert path.
SEQUENTIAL_SAMPLE_CAP = 20_000


def _split_stream(table: Table, n_base: int) -> tuple:
    """Split a table into a build part and an insert stream."""
    base = table.take(np.arange(n_base, dtype=np.int64))
    stream = table.take(np.arange(n_base, table.n_rows, dtype=np.int64))
    return base, stream


def _time_sequential_inserts(index: COAXIndex, stream: Table, n_total: int) -> float:
    """Seconds for ``n_total`` one-row inserts, scaled from a capped sample."""
    sample = min(stream.n_rows, SEQUENTIAL_SAMPLE_CAP, n_total)
    records = [stream.row(i) for i in range(sample)]
    start = time.perf_counter()
    for record in records:
        index.insert(record)
    elapsed = time.perf_counter() - start
    return elapsed / sample * n_total if sample else 0.0


def _compaction_rows(
    dataset_name: str,
    base: Table,
    stream: Table,
    config: COAXConfig,
    workload,
) -> List[Dict[str, object]]:
    """Incremental compact vs from-scratch rebuild on one dataset."""
    index = COAXIndex(base, config=config)
    groups = list(index.groups)
    index.insert_batch(stream)
    start = time.perf_counter()
    index.compact()
    incremental_seconds = time.perf_counter() - start
    combined = base.concat(stream)
    start = time.perf_counter()
    rebuilt = COAXIndex(combined, config=config, groups=groups)
    rebuild_seconds = time.perf_counter() - start
    mismatches = 0
    for query in workload:
        left = np.sort(index.range_query(query))
        right = np.sort(rebuilt.range_query(query))
        if not np.array_equal(left, right):
            mismatches += 1
    return [
        {
            "phase": "compact",
            "dataset": dataset_name,
            "method": "incremental compact()",
            "rows": stream.n_rows,
            "seconds": round(incremental_seconds, 4),
            "mismatched_queries": mismatches,
        },
        {
            "phase": "compact",
            "dataset": dataset_name,
            "method": "from-scratch rebuild",
            "rows": stream.n_rows,
            "seconds": round(rebuild_seconds, 4),
            "speedup_vs_rebuild": round(rebuild_seconds / max(incremental_seconds, 1e-9), 2),
        },
    ]


def run(
    n_rows: int = 30_000,
    n_queries: int = 25,
    seed: int = 5,
    n_inserts: int = 100_000,
    batch_size: int = 10_000,
    n_pending_for_query: int = 10_000,
) -> ExperimentResult:
    """Run the update benchmark and return its result table."""
    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    config = COAXConfig()

    # ------------------------------------------------------------------
    # Dataset: one generation covers the build part and the insert stream.
    # ------------------------------------------------------------------
    full = airline_table(n_rows + max(n_inserts, n_pending_for_query), seed=seed)
    base, stream = _split_stream(full, n_rows)
    workloads = standard_workloads(base, n_queries=n_queries, seed=seed)
    range_workload = workloads["range"]

    # ------------------------------------------------------------------
    # 1. Insert throughput: sequential insert() vs insert_batch().
    # ------------------------------------------------------------------
    insert_stream = stream.take(np.arange(n_inserts, dtype=np.int64))
    seq_index = COAXIndex(base, config=config)
    groups = list(seq_index.groups)
    sequential_seconds = _time_sequential_inserts(seq_index, insert_stream, n_inserts)
    if n_inserts > SEQUENTIAL_SAMPLE_CAP:
        notes.append(
            f"sequential insert timed over {SEQUENTIAL_SAMPLE_CAP} rows and scaled "
            f"linearly to {n_inserts} (per-insert cost is amortised O(1))"
        )
    batch_index = COAXIndex(base, config=config, groups=groups)
    start = time.perf_counter()
    batch_index.insert_batch(insert_stream)
    batch_seconds = time.perf_counter() - start
    rows.append(
        {
            "phase": "insert",
            "dataset": "Airline",
            "method": "sequential insert()",
            "rows": n_inserts,
            "seconds": round(sequential_seconds, 4),
            "rows_per_s": int(n_inserts / max(sequential_seconds, 1e-9)),
        }
    )
    rows.append(
        {
            "phase": "insert",
            "dataset": "Airline",
            "method": "insert_batch()",
            "rows": n_inserts,
            "seconds": round(batch_seconds, 4),
            "rows_per_s": int(n_inserts / max(batch_seconds, 1e-9)),
            "speedup_vs_seq": round(sequential_seconds / max(batch_seconds, 1e-9), 1),
        }
    )

    # ------------------------------------------------------------------
    # 2. Query latency with a populated delta store.
    # ------------------------------------------------------------------
    clean_index = COAXIndex(base, config=config, groups=groups)
    pending_index = COAXIndex(base, config=config, groups=groups)
    pending_index.insert_batch(stream.take(np.arange(n_pending_for_query, dtype=np.int64)))
    for label, index in [("0 pending", clean_index), (f"{n_pending_for_query} pending", pending_index)]:
        samples = []
        for query in range_workload:
            start = time.perf_counter()
            index.range_query(query)
            samples.append(time.perf_counter() - start)
        rows.append(
            {
                "phase": "query",
                "dataset": "Airline",
                "method": label,
                "rows": index.n_rows + index.n_pending,
                "mean_ms": round(float(np.mean(samples)) * 1e3, 4),
                "p95_ms": round(float(np.quantile(samples, 0.95)) * 1e3, 4),
            }
        )

    # ------------------------------------------------------------------
    # 3. Incremental compaction vs from-scratch rebuild (both datasets).
    # ------------------------------------------------------------------
    compact_stream = stream.take(np.arange(min(n_inserts, 20_000), dtype=np.int64))
    rows.extend(_compaction_rows("Airline", base, compact_stream, config, range_workload))
    osm_full = osm_table(n_rows + 10_000, seed=seed + 1)
    osm_base, osm_stream = _split_stream(osm_full, n_rows)
    osm_workload = standard_workloads(osm_base, n_queries=n_queries, seed=seed + 1)["range"]
    rows.extend(_compaction_rows("OSM", osm_base, osm_stream, config, osm_workload))

    # ------------------------------------------------------------------
    # 4. Mixed read/write workload with auto-compaction.
    # ------------------------------------------------------------------
    auto_config = replace(config, auto_compact_threshold=4 * batch_size)
    mixed_index = COAXIndex(base, config=auto_config, groups=groups)
    queries = list(range_workload)
    insert_seconds = 0.0
    query_seconds = 0.0
    n_batches = max(1, n_inserts // batch_size)
    inserted = 0
    compactions = 0
    for i in range(n_batches):
        lo, hi = i * batch_size, min((i + 1) * batch_size, stream.n_rows)
        if lo >= hi:
            break
        chunk = stream.take(np.arange(lo, hi, dtype=np.int64))
        pending_before = mixed_index.n_pending
        start = time.perf_counter()
        mixed_index.insert_batch(chunk)
        insert_seconds += time.perf_counter() - start
        if mixed_index.n_pending < pending_before + chunk.n_rows:
            compactions += 1
        inserted += chunk.n_rows
        query = queries[i % len(queries)]
        start = time.perf_counter()
        mixed_index.range_query(query)
        query_seconds += time.perf_counter() - start
    rows.append(
        {
            "phase": "mixed",
            "dataset": "Airline",
            "method": f"auto-compact @ {auto_config.auto_compact_threshold}",
            "rows": inserted,
            "seconds": round(insert_seconds + query_seconds, 4),
            "rows_per_s": int(inserted / max(insert_seconds, 1e-9)),
            "mean_ms": round(query_seconds / max(n_batches, 1) * 1e3, 4),
            "compactions": compactions,
        }
    )

    return ExperimentResult(
        experiment="updates",
        description="Insert throughput, pending-query latency and compaction cost",
        rows=rows,
        notes=notes,
    )
