"""Headline claims of the paper.

Abstract / conclusions: "we reduce the execution time by 25% while reducing
the memory footprint of the index by four orders of magnitude."  This driver
measures both ratios on the two datasets:

* memory — COAX's total directory bytes versus the best competitor that
  indexes all dimensions (R-Tree and the full grid), and versus Column
  Files;
* runtime — mean range-query latency of COAX versus the fastest
  conventional competitor.

The exact factors depend on scale and configuration (in the paper they
depend on "the number of the FDs and their degree of correlation"); the
check is that COAX's directory is orders of magnitude smaller and its
queries are at least competitive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.experiments.datasets import airline_table, osm_table, standard_workloads
from repro.bench.harness import default_index_specs, run_comparison
from repro.bench.reporting import ExperimentResult
from repro.core.config import COAXConfig
from repro.data.table import Table

__all__ = ["run"]


def _dataset_rows(
    dataset: str,
    table: Table,
    *,
    n_queries: int,
    seed: int,
    coax_config: Optional[COAXConfig],
) -> List[Dict[str, object]]:
    workloads = {"range": standard_workloads(table, n_queries=n_queries, seed=seed)["range"]}
    specs = default_index_specs(coax_config=coax_config, include_full_scan=False)
    comparison = run_comparison(
        table, workloads, specs, dataset_name=dataset, verify_against=table
    )
    by_name = {row.index_name: row for row in comparison}
    coax = by_name["COAX"]
    competitors = {name: row for name, row in by_name.items() if name != "COAX"}
    fastest_competitor = min(competitors.values(), key=lambda row: row.timing.mean_ms)
    coax_work = coax.extra.get("rows_examined_per_q", 0.0)
    rows: List[Dict[str, object]] = []
    for name, row in competitors.items():
        memory_factor = row.directory_bytes / max(coax.directory_bytes, 1)
        runtime_factor = row.timing.mean_ms / max(coax.timing.mean_ms, 1e-9)
        competitor_work = row.extra.get("rows_examined_per_q", 0.0)
        rows.append(
            {
                "dataset": dataset,
                "competitor": name,
                "coax_dir_bytes": coax.directory_bytes,
                "competitor_dir_bytes": row.directory_bytes,
                "memory_reduction_x": round(memory_factor, 1),
                "coax_mean_ms": round(coax.timing.mean_ms, 3),
                "competitor_mean_ms": round(row.timing.mean_ms, 3),
                "speedup_x": round(runtime_factor, 2),
                # Work (rows examined) is the substrate-independent metric
                # behind the paper's ~25% lookup-time improvement.
                "coax_rows_per_q": round(coax_work, 1),
                "competitor_rows_per_q": round(competitor_work, 1),
                "work_reduction_x": round(competitor_work / max(coax_work, 1e-9), 2),
            }
        )
    rows.append(
        {
            "dataset": dataset,
            "competitor": "fastest competitor",
            "coax_mean_ms": round(coax.timing.mean_ms, 3),
            "competitor_mean_ms": round(fastest_competitor.timing.mean_ms, 3),
            "speedup_x": round(
                fastest_competitor.timing.mean_ms / max(coax.timing.mean_ms, 1e-9), 2
            ),
        }
    )
    return rows


def run(
    n_rows: int = 30_000,
    n_queries: int = 30,
    seed: int = 4,
    coax_config: Optional[COAXConfig] = None,
) -> ExperimentResult:
    """Measure the headline memory-reduction and speedup factors."""
    rows: List[Dict[str, object]] = []
    rows.extend(
        _dataset_rows("Airline", airline_table(n_rows), n_queries=n_queries, seed=seed,
                      coax_config=coax_config)
    )
    rows.extend(
        _dataset_rows("OSM", osm_table(n_rows), n_queries=n_queries, seed=seed,
                      coax_config=coax_config)
    )
    return ExperimentResult(
        experiment="headline",
        description="Headline claims: memory reduction and ~25% faster lookups",
        rows=rows,
        notes=[
            "paper: index memory shrinks by up to four orders of magnitude and lookups "
            "improve by ~25%; factors here depend on the benchmark scale",
        ],
    )
