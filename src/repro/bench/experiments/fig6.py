"""Figure 6 — query runtime on Airline and OSM, range and point queries.

The paper compares COAX (with its primary and outlier components called out
separately), the R-Tree, the Full Grid and the Full Scan on both datasets
and both workload kinds, on a log-scale runtime axis.  This driver runs the
same competitor set and additionally reports the COAX primary/outlier split
per query so the stacked bars of the figure can be reconstructed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


from repro.bench.experiments.datasets import airline_table, osm_table, standard_workloads
from repro.bench.harness import default_index_specs, run_comparison
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.queries import QueryWorkload
from repro.data.table import Table

__all__ = ["run", "coax_component_timing"]


def coax_component_timing(
    index: COAXIndex, workload: QueryWorkload
) -> Dict[str, float]:
    """Mean per-query time split into COAX's primary and outlier components."""
    primary_seconds = 0.0
    outlier_seconds = 0.0
    for query in workload:
        plan = index.plan(query)
        if plan.use_primary:
            start = time.perf_counter()
            index.primary_index.range_query(plan.primary_query.intersect(query))
            primary_seconds += time.perf_counter() - start
        if plan.use_outlier:
            start = time.perf_counter()
            index.outlier_index.range_query(plan.outlier_query)
            outlier_seconds += time.perf_counter() - start
    n = max(len(workload), 1)
    return {
        "coax_primary_ms": primary_seconds / n * 1e3,
        "coax_outlier_ms": outlier_seconds / n * 1e3,
    }


def _dataset_rows(
    dataset_name: str,
    table: Table,
    *,
    n_queries: int,
    seed: int,
    coax_config: Optional[COAXConfig],
) -> List[Dict[str, object]]:
    workloads = standard_workloads(table, n_queries=n_queries, seed=seed)
    specs = default_index_specs(coax_config=coax_config)
    comparison = run_comparison(
        table, workloads, specs, dataset_name=dataset_name, verify_against=table
    )
    rows = [row.as_dict() for row in comparison]

    # Add the COAX primary/outlier split (the two stacked series of Figure 6).
    coax = COAXIndex(table, config=coax_config or COAXConfig())
    for workload_name, workload in workloads.items():
        split = coax_component_timing(coax, workload)
        rows.append(
            {
                "index": "COAX (components)",
                "dataset": dataset_name,
                "workload": workload_name,
                "mean_ms": round(split["coax_primary_ms"] + split["coax_outlier_ms"], 3),
                "coax_primary_ms": round(split["coax_primary_ms"], 3),
                "coax_outlier_ms": round(split["coax_outlier_ms"], 3),
            }
        )
    return rows


def run(
    n_rows: int = 30_000,
    n_queries: int = 30,
    seed: int = 1,
    coax_config: Optional[COAXConfig] = None,
) -> ExperimentResult:
    """Reproduce the Figure 6 runtime comparison."""
    rows: List[Dict[str, object]] = []
    rows.extend(
        _dataset_rows("Airline", airline_table(n_rows), n_queries=n_queries, seed=seed,
                      coax_config=coax_config)
    )
    rows.extend(
        _dataset_rows("OSM", osm_table(n_rows), n_queries=n_queries, seed=seed,
                      coax_config=coax_config)
    )
    return ExperimentResult(
        experiment="fig6",
        description="Query runtime, range and point queries (paper Figure 6)",
        rows=rows,
        notes=[
            "paper shape: COAX < R-Tree and Full Grid; Full Scan slowest by orders of magnitude",
            "absolute times differ from the paper (pure-Python substrate); compare ratios",
        ],
    )
