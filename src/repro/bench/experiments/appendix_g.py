"""Appendix G — cells scanned by a square grid versus the soft-FD index.

The appendix derives how many cells an equivalent square grid must touch to
scan (roughly) the same area as the soft-FD index (Equation 14), concluding
that a narrow margin forces the grid into a very large number of cells.
This driver measures, on synthetic linear data, the number of grid cells a
2D uniform grid actually visits for Y-range queries and compares the growth
trend against the analytic prediction as the margin shrinks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bench.reporting import ExperimentResult
from repro.data.predicates import Interval, Rectangle
from repro.data.table import Table
from repro.indexes.uniform_grid import UniformGridIndex
from repro.stats.theory import grid_cells_scanned, scanned_area

__all__ = ["run"]


def run(
    n_rows: int = 40_000,
    slope: float = 2.0,
    epsilons: Sequence[float] = (2.0, 8.0, 32.0),
    query_width: float = 20.0,
    seed: int = 5,
) -> ExperimentResult:
    """Compare analytic and measured grid scanning cost as the margin varies."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1000.0, size=n_rows)
    rows: List[Dict[str, object]] = []
    for epsilon in epsilons:
        noise = rng.uniform(-epsilon, epsilon, size=n_rows)
        y = slope * x + noise
        table = Table({"x": x, "y": y})
        x_range = float(x.max() - x.min())
        y_range = float(y.max() - y.min())
        # Size the grid so one cell covers roughly the soft-FD scanned area
        # (the t = 1 setting of the appendix).
        target_cells = grid_cells_scanned(x_range, y_range, epsilon, slope, query_width)
        cells_per_dim = max(2, min(64, int(np.sqrt(target_cells))))
        grid = UniformGridIndex(table, cells_per_dim=cells_per_dim)

        measured_cells = []
        for _ in range(20):
            low = rng.uniform(y.min(), y.max() - query_width)
            query = Rectangle({"y": Interval(low, low + query_width)})
            grid.stats.reset()
            grid.range_query(query)
            measured_cells.append(grid.stats.cells_visited)
        rows.append(
            {
                "epsilon": epsilon,
                "grid_cells_per_dim": cells_per_dim,
                "analytic_cells_to_scan": round(target_cells, 1),
                "measured_cells_visited": round(float(np.mean(measured_cells)), 1),
                "softfd_scanned_area": round(scanned_area(query_width, epsilon, slope), 1),
            }
        )
    return ExperimentResult(
        experiment="appendix_g",
        description="Square-grid cells scanned vs the soft-FD index (Appendix G)",
        rows=rows,
        notes=[
            "shape to check: the narrower the margin, the more cells an equivalent grid "
            "needs (analytic column grows as epsilon shrinks)",
        ],
    )
