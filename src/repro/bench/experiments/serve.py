"""Serving benchmark — adaptive query coalescing (CLI: ``serve-bench``).

Drives real TCP load against the asyncio serving front end
(:mod:`repro.serve`) and measures what adaptive micro-batch coalescing
buys over a naive one-query-at-a-time server.  Both servers share every
other component — protocol, connection handling, worker-thread dispatch,
the same :class:`~repro.core.engine.ShardedCOAX` engine — so the delta is
the coalescer alone.

Three phases, all against one engine instance:

* **closed-loop** — ``clients`` concurrent connections, one outstanding
  query each, draining a shared workload.  Throughput and latency
  percentiles per client count, for the naive and the coalescing server;
  coalescing rows carry ``speedup_vs_naive``.
* **open-loop** — queries offered at a fixed rate (``offered_qps``)
  across a connection pool, regardless of completions: the
  throughput-vs-offered-load curve, with typed ``overloaded``
  rejections counted rather than queued forever.
* **swarm** — one coalescing server holding thousands of concurrent
  connections (bounded by the process fd limit), one query per client:
  the many-idle-clients shape of a real service front end.

Every served result in every phase is verified element-for-element
against the engine queried directly (the ``mismatched_queries`` column;
any mismatch raises).  ``smoke=True`` shrinks the load to CI scale and
asserts the two serving gates: bit-for-bit oracle identity *and*
coalescing strictly beating naive throughput while actually batching
(mean batch > 1).

Single-core honesty: client simulators, servers and the event loop share
one process, and the engine runs in the dispatcher's worker thread.  The
coalescing win measured here is therefore *algorithmic* — one batched
engine call amortises planning/translation/merge across the whole
micro-batch — not extra parallelism.
"""

from __future__ import annotations

import asyncio
import os
import resource
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.experiments.datasets import airline_table
from repro.bench.harness import count_mismatches
from repro.bench.reporting import ExperimentResult
from repro.core.config import EngineConfig
from repro.core.engine import ShardedCOAX
from repro.data.queries import WorkloadConfig, generate_knn_queries
from repro.serve import (
    CoalescerConfig,
    CoalescingQueryServer,
    NaiveQueryServer,
    ServeClient,
    ServerConfig,
    ServerOverloadedError,
)

__all__ = ["run"]

#: Closed-loop concurrency sweep of the default configuration.
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1, 8, 64, 256)

#: Offered-QPS sweep of the default open-loop phase.
DEFAULT_OFFERED_QPS: Tuple[int, ...] = (500, 1000, 2000, 4000)

#: Connections the swarm phase asks for; the fd limit may cap it lower.
DEFAULT_SWARM_CLIENTS = 8_000

#: Connections opened per chunk while ramping the swarm (the listen
#: backlog is finite; a single 10k connect burst would overflow it).
SWARM_CONNECT_CHUNK = 64


def _max_clients(requested: int) -> int:
    """Cap a client count so two sockets per client fit under the fd limit.

    Each simulated client costs two fds in this single-process harness
    (its socket plus the server's accepted socket); 2048 fds are reserved
    for everything else the process holds open.
    """
    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    return max(1, min(requested, (soft - 2048) // 2))


def _percentiles_ms(latencies: Sequence[float]) -> Tuple[float, float, float]:
    values = np.asarray(latencies, dtype=np.float64) * 1e3
    if len(values) == 0:
        return 0.0, 0.0, 0.0
    return (
        float(np.percentile(values, 50)),
        float(np.percentile(values, 99)),
        float(values.mean()),
    )


def _bench_config(max_batch: int) -> ServerConfig:
    return ServerConfig(
        coalescer=CoalescerConfig(max_batch=max_batch, max_window_s=0.002,
                                  min_window_s=0.0002)
    )


async def _closed_loop(
    server, queries: Sequence, n_clients: int
) -> Dict[str, object]:
    """N connections, one outstanding query each, drain a shared workload."""
    work = asyncio.Queue()
    for index, query in enumerate(queries):
        work.put_nowait((index, query))
    latencies: List[Optional[float]] = [None] * len(queries)
    results: List[Optional[np.ndarray]] = [None] * len(queries)

    async def one_client() -> None:
        async with await ServeClient.connect("127.0.0.1", server.port) as client:
            while True:
                try:
                    index, query = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                result = await client.query(query)
                latencies[index] = time.perf_counter() - started
                results[index] = result.row_ids

    wall_start = time.perf_counter()
    await asyncio.gather(*(one_client() for _ in range(n_clients)))
    wall = time.perf_counter() - wall_start
    p50, p99, mean = _percentiles_ms([lat for lat in latencies if lat is not None])
    return {
        "wall_s": wall,
        "throughput_qps": len(queries) / max(wall, 1e-9),
        "p50_ms": p50,
        "p99_ms": p99,
        "mean_ms": mean,
        "results": results,
    }


async def _open_loop(
    server, queries: Sequence, n_clients: int, offered_qps: float
) -> Dict[str, object]:
    """Offer queries at a fixed rate over a pool, independent of completions."""
    loop = asyncio.get_running_loop()
    pool = [
        await ServeClient.connect("127.0.0.1", server.port) for _ in range(n_clients)
    ]
    latencies: List[float] = []
    results: Dict[int, np.ndarray] = {}
    rejected = 0

    async def one_query(client: ServeClient, index: int, query) -> None:
        nonlocal rejected
        started = time.perf_counter()
        try:
            result = await client.query(query)
        except ServerOverloadedError:
            rejected += 1
            return
        latencies.append(time.perf_counter() - started)
        results[index] = result.row_ids

    tasks: List[asyncio.Task] = []
    start = loop.time()
    for index, query in enumerate(queries):
        delay = start + index / offered_qps - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(one_query(pool[index % n_clients], index, query)))
    await asyncio.gather(*tasks)
    wall = loop.time() - start
    for client in pool:
        await client.close()
    p50, p99, mean = _percentiles_ms(latencies)
    return {
        "wall_s": wall,
        "completed": len(latencies),
        "rejected": rejected,
        "throughput_qps": len(latencies) / max(wall, 1e-9),
        "p50_ms": p50,
        "p99_ms": p99,
        "mean_ms": mean,
        "results": results,
    }


async def _swarm(server, queries: Sequence, n_clients: int) -> Dict[str, object]:
    """Thousands of concurrent connections, one query each.

    At this scale the harness shares one process (and one fd table) with
    the server, so individual connects or queries may fail transiently;
    failures are counted and reported instead of aborting the phase —
    every *completed* query is still oracle-verified.
    """
    clients: List[ServeClient] = []
    failed_connects = 0
    connect_start = time.perf_counter()

    async def connect_one() -> Optional[ServeClient]:
        try:
            return await ServeClient.connect("127.0.0.1", server.port)
        except (ConnectionError, OSError):
            return None

    for chunk_start in range(0, n_clients, SWARM_CONNECT_CHUNK):
        chunk = range(chunk_start, min(chunk_start + SWARM_CONNECT_CHUNK, n_clients))
        connected = await asyncio.gather(*(connect_one() for _ in chunk))
        clients.extend(client for client in connected if client is not None)
        failed_connects += sum(1 for client in connected if client is None)
    connect_s = time.perf_counter() - connect_start
    n_live = len(clients)
    latencies: List[Optional[float]] = [None] * n_live
    results: List[Optional[np.ndarray]] = [None] * n_live
    failed_queries = 0

    async def one_shot(index: int) -> None:
        nonlocal failed_queries
        started = time.perf_counter()
        try:
            result = await clients[index].query(queries[index % len(queries)])
        except (ConnectionError, OSError):
            failed_queries += 1
            return
        latencies[index] = time.perf_counter() - started
        results[index] = result.row_ids

    wall_start = time.perf_counter()
    await asyncio.gather(*(one_shot(index) for index in range(n_live)))
    wall = time.perf_counter() - wall_start
    for client in clients:
        await client.close()
    completed = sum(1 for lat in latencies if lat is not None)
    p50, p99, mean = _percentiles_ms([lat for lat in latencies if lat is not None])
    return {
        "connect_s": connect_s,
        "clients": n_live,
        "completed": completed,
        "failed": failed_connects + failed_queries,
        "wall_s": wall,
        "throughput_qps": completed / max(wall, 1e-9),
        "p50_ms": p50,
        "p99_ms": p99,
        "mean_ms": mean,
        "results": results,
    }


def _verify(
    expected: Sequence[np.ndarray], results, queries: Sequence, phase: str
) -> int:
    """Oracle check: every served result vs the engine queried directly."""
    if isinstance(results, dict):
        pairs = [(expected[i % len(queries)], r) for i, r in results.items()]
    else:
        pairs = [
            (expected[i % len(queries)], r)
            for i, r in enumerate(results)
            if r is not None
        ]
    mismatched = count_mismatches([e for e, _ in pairs], [r for _, r in pairs])
    if mismatched:
        raise AssertionError(
            f"{phase}: {mismatched}/{len(pairs)} served results diverged from "
            "the direct engine query"
        )
    return len(pairs)


def run(
    n_rows: int = 100_000,
    n_queries: int = 1500,
    seed: int = 23,
    client_counts: Optional[Sequence[int]] = None,
    offered_qps: Optional[Sequence[int]] = None,
    swarm_clients: int = DEFAULT_SWARM_CLIENTS,
    n_shards: int = 4,
    max_batch: int = 256,
    smoke: bool = False,
) -> ExperimentResult:
    """Run the serving benchmark and return its result table.

    ``n_queries`` is the workload size of each closed-loop load point and
    the pool the open-loop/swarm phases cycle through.  ``client_counts``
    sweeps closed-loop concurrency (both servers); ``offered_qps`` sweeps
    the open-loop arrival rate; ``swarm_clients`` asks for that many
    concurrent connections (fd-limit capped).  ``smoke`` shrinks
    everything to CI scale and asserts the serving gates.
    """
    if smoke:
        n_rows = min(n_rows, 6_000)
        n_queries = min(n_queries, 384)
        client_counts = tuple(client_counts) if client_counts else (4, 64)
        offered_qps = tuple(offered_qps) if offered_qps else (800,)
        swarm_clients = min(swarm_clients, 200)
    else:
        client_counts = (
            tuple(client_counts) if client_counts else DEFAULT_CLIENT_COUNTS
        )
        offered_qps = tuple(offered_qps) if offered_qps else DEFAULT_OFFERED_QPS

    table = airline_table(n_rows, seed=seed)
    engine = ShardedCOAX(table, config=EngineConfig(n_shards=n_shards, workers=1))
    indexed_dims = tuple(engine.shards[0].build_report.indexed_dimensions)
    queries = list(
        generate_knn_queries(
            table,
            WorkloadConfig(
                n_queries=n_queries,
                k_neighbours=max(200, n_rows // 500),
                dimensions=indexed_dims,
                seed=seed,
            ),
        )
    )
    # The oracle: the engine queried directly, no serving layer involved.
    expected = engine.batch_range_query(queries)

    rows: List[Dict[str, object]] = []
    notes: List[str] = []
    verified_total = 0
    closed_tp: Dict[Tuple[str, int], float] = {}
    closed_p50: Dict[Tuple[str, int], float] = {}

    async def bench() -> None:
        nonlocal verified_total
        servers = {
            "naive": NaiveQueryServer(engine, config=_bench_config(max_batch)),
            "coalescing": CoalescingQueryServer(
                engine, config=_bench_config(max_batch)
            ),
        }
        # -------------------------- closed loop --------------------------
        for name, server in servers.items():
            async with server:
                for n_clients in client_counts:
                    before = server.snapshot()
                    stats_before = engine.stats.snapshot()
                    point = await _closed_loop(server, queries, n_clients)
                    window = engine.stats.delta(stats_before)
                    verified_total += _verify(
                        expected, point["results"], queries, f"closed-loop/{name}"
                    )
                    closed_tp[(name, n_clients)] = point["throughput_qps"]
                    closed_p50[(name, n_clients)] = point["p50_ms"]
                    row = {
                        "dataset": "Airline",
                        "phase": "closed-loop",
                        "server": name,
                        "clients": n_clients,
                        "queries": len(queries),
                        "seconds": round(point["wall_s"], 4),
                        "throughput_qps": int(point["throughput_qps"]),
                        "p50_ms": round(point["p50_ms"], 3),
                        "p99_ms": round(point["p99_ms"], 3),
                        "mean_ms": round(point["mean_ms"], 3),
                        "shards_pruned": window.shards_pruned,
                        "rows_examined": window.rows_examined,
                        "mismatched_queries": 0,
                    }
                    if name == "coalescing":
                        naive_tp = closed_tp.get(("naive", n_clients))
                        if naive_tp:
                            row["speedup_vs_naive"] = round(
                                point["throughput_qps"] / naive_tp, 2
                            )
                        after = server.snapshot()
                        point_batches = after["batches"] - before["batches"]
                        point_dispatched = after["dispatched"] - before["dispatched"]
                        row["mean_batch"] = round(
                            point_dispatched / max(point_batches, 1), 2
                        )
                    rows.append(row)

        # --------------------------- open loop ---------------------------
        pool_size = min(256, max(client_counts))
        for name in ("naive", "coalescing"):
            for rate in offered_qps:
                server = (
                    NaiveQueryServer(engine, config=_bench_config(max_batch))
                    if name == "naive"
                    else CoalescingQueryServer(engine, config=_bench_config(max_batch))
                )
                stats_before = engine.stats.snapshot()
                async with server:
                    offered = queries[: min(len(queries), max(rate, 256))]
                    point = await _open_loop(server, offered, pool_size, rate)
                window = engine.stats.delta(stats_before)
                verified_total += _verify(
                    expected, point["results"], queries, f"open-loop/{name}"
                )
                rows.append(
                    {
                        "dataset": "Airline",
                        "phase": "open-loop",
                        "server": name,
                        "clients": pool_size,
                        "offered_qps": rate,
                        "queries": len(offered),
                        "completed": point["completed"],
                        "rejected": point["rejected"],
                        "seconds": round(point["wall_s"], 4),
                        "throughput_qps": int(point["throughput_qps"]),
                        "p50_ms": round(point["p50_ms"], 3),
                        "p99_ms": round(point["p99_ms"], 3),
                        "shards_pruned": window.shards_pruned,
                        "rows_examined": window.rows_examined,
                        "mismatched_queries": 0,
                    }
                )

        # ----------------------------- swarm -----------------------------
        n_swarm = _max_clients(swarm_clients)
        server = CoalescingQueryServer(engine, config=_bench_config(max_batch))
        stats_before = engine.stats.snapshot()
        async with server:
            point = await _swarm(server, queries, n_swarm)
        window = engine.stats.delta(stats_before)
        verified_total += _verify(expected, point["results"], queries, "swarm")
        rows.append(
            {
                "dataset": "Airline",
                "phase": "swarm",
                "server": "coalescing",
                "clients": point["clients"],
                "queries": point["completed"],
                "failed": point["failed"],
                "connect_s": round(point["connect_s"], 3),
                "seconds": round(point["wall_s"], 4),
                "throughput_qps": int(point["throughput_qps"]),
                "p50_ms": round(point["p50_ms"], 3),
                "p99_ms": round(point["p99_ms"], 3),
                "shards_pruned": window.shards_pruned,
                "rows_examined": window.rows_examined,
                "mismatched_queries": 0,
            }
        )
        if n_swarm < swarm_clients:
            notes.append(
                f"swarm capped at {n_swarm} clients by the fd limit "
                f"(requested {swarm_clients})"
            )
        if point["failed"]:
            notes.append(
                f"swarm: {point['failed']} of {n_swarm} clients failed "
                "transiently (single shared process at the fd ceiling); every "
                "completed query was still oracle-verified"
            )

    asyncio.run(bench())
    engine.close()

    top = max(client_counts)
    speedup = closed_tp[("coalescing", top)] / max(closed_tp[("naive", top)], 1e-9)
    notes.append(
        f"every served result verified element-for-element against the direct "
        f"engine query ({verified_total} results checked, 0 mismatches)"
    )
    notes.append(
        f"closed-loop at {top} clients: coalescing {speedup:.2f}x naive throughput"
    )
    notes.append(
        f"host cpu cores: {os.cpu_count()} — clients, servers and event loop "
        "share one process; the coalescing gain is batch-kernel amortisation, "
        "not parallelism"
    )
    if smoke:
        if speedup <= 1.0:
            raise AssertionError(
                f"coalescing did not beat naive throughput at {top} clients "
                f"({speedup:.2f}x)"
            )
        mean_batches = [
            row["mean_batch"]
            for row in rows
            if row.get("server") == "coalescing" and "mean_batch" in row
            and row.get("clients") == top
        ]
        if not mean_batches or mean_batches[-1] <= 1.0:
            raise AssertionError(
                "coalescing server did not actually batch under concurrent load"
            )
        notes.append(
            "smoke mode: asserted oracle identity, coalescing > naive throughput, "
            "and mean batch > 1"
        )

    return ExperimentResult(
        experiment="serve",
        description=(
            "Serve — adaptive query coalescing vs a naive one-at-a-time server"
        ),
        rows=rows,
        notes=notes,
    )
