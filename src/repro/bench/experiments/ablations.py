"""Ablation studies of COAX's design choices (DESIGN.md section 5).

These are not figures from the paper; they quantify the impact of the
choices the paper makes implicitly, on the same synthetic Airline dataset:

* margin selection — robust (MAD) margins vs quantile-coverage margins;
* outlier index structure — grid file vs uniform grid vs R-Tree;
* bucketing threshold and sample size — model quality vs training cost;
* linear vs spline soft-FD models — segment count and inlier coverage.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bench.experiments.datasets import airline_table, standard_workloads
from repro.bench.harness import time_workload
from repro.bench.reporting import ExperimentResult
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.fd.bucketing import BucketingConfig
from repro.fd.detection import DetectionConfig
from repro.fd.model import SplineFDModel

__all__ = ["run", "margin_ablation", "outlier_index_ablation", "bucketing_ablation", "spline_ablation"]


def margin_ablation(n_rows: int = 20_000, n_queries: int = 20) -> List[Dict[str, object]]:
    """Robust vs quantile margin estimation."""
    table = airline_table(n_rows)
    workload = standard_workloads(table, n_queries=n_queries)["range"]
    rows: List[Dict[str, object]] = []
    settings = {
        "robust (3 sigma)": DetectionConfig(margin_method="robust", margin_sigmas=3.0),
        "robust (2 sigma)": DetectionConfig(margin_method="robust", margin_sigmas=2.0),
        "quantile (90%)": DetectionConfig(margin_method="quantile", target_coverage=0.9),
        "quantile (98%)": DetectionConfig(
            margin_method="quantile", target_coverage=0.98, max_relative_band=0.6
        ),
    }
    for label, detection in settings.items():
        index = COAXIndex(table, config=COAXConfig(detection=detection))
        timing = time_workload(index, workload)
        rows.append(
            {
                "ablation": "margins",
                "setting": label,
                "n_groups": len(index.groups),
                "primary_ratio": round(index.primary_ratio, 3),
                "mean_ms": round(timing.mean_ms, 3),
                "dir_bytes": index.directory_bytes(),
            }
        )
    return rows


def outlier_index_ablation(n_rows: int = 20_000, n_queries: int = 20) -> List[Dict[str, object]]:
    """Which structure should hold the outliers?"""
    table = airline_table(n_rows)
    workload = standard_workloads(table, n_queries=n_queries)["range"]
    rows: List[Dict[str, object]] = []
    for kind in ("sorted_cell_grid", "uniform_grid", "rtree", "full_scan"):
        index = COAXIndex(table, config=COAXConfig(outlier_index=kind))
        timing = time_workload(index, workload)
        rows.append(
            {
                "ablation": "outlier index",
                "setting": kind,
                "mean_ms": round(timing.mean_ms, 3),
                "outlier_dir_bytes": index.memory_breakdown()["outlier"],
            }
        )
    return rows


def bucketing_ablation(n_rows: int = 20_000) -> List[Dict[str, object]]:
    """Sample size / cell threshold of Algorithm 1 vs detection quality."""
    table = airline_table(n_rows)
    rows: List[Dict[str, object]] = []
    settings = {
        "sample=2k, chunks=16": BucketingConfig(sample_count=2_000, bucket_chunks=16),
        "sample=5k, chunks=32": BucketingConfig(sample_count=5_000, bucket_chunks=32),
        "sample=20k, chunks=64": BucketingConfig(sample_count=20_000, bucket_chunks=64),
        "sample=20k, chunks=64, threshold=10": BucketingConfig(
            sample_count=20_000, bucket_chunks=64, cell_threshold=10
        ),
    }
    for label, bucketing in settings.items():
        config = COAXConfig(detection=DetectionConfig(bucketing=bucketing))
        index = COAXIndex(table, config=config)
        rows.append(
            {
                "ablation": "bucketing",
                "setting": label,
                "n_groups": len(index.groups),
                "primary_ratio": round(index.primary_ratio, 3),
            }
        )
    return rows


def spline_ablation(n_rows: int = 20_000) -> List[Dict[str, object]]:
    """Linear vs piecewise-linear soft-FD model on a non-linear dependency."""
    rng = np.random.default_rng(9)
    x = np.sort(rng.uniform(0.0, 1000.0, size=n_rows))
    # A mildly non-linear dependency a single line cannot capture tightly.
    y = 0.002 * x**2 + 0.5 * x + rng.normal(0.0, 3.0, size=n_rows)
    rows: List[Dict[str, object]] = []
    for epsilon in (10.0, 30.0, 100.0):
        spline = SplineFDModel.fit(x, y, epsilon=epsilon)
        inside = float(np.mean(spline.within_margin(x, y)))
        rows.append(
            {
                "ablation": "spline model",
                "setting": f"epsilon={epsilon}",
                "n_segments": spline.n_segments,
                "inlier_fraction": round(inside, 3),
                "model_bytes": spline.memory_bytes(),
            }
        )
    return rows


def run(n_rows: int = 20_000, n_queries: int = 20, seed: int = 0) -> ExperimentResult:
    """Run all ablations."""
    rows: List[Dict[str, object]] = []
    rows.extend(margin_ablation(n_rows, n_queries))
    rows.extend(outlier_index_ablation(n_rows, n_queries))
    rows.extend(bucketing_ablation(n_rows))
    rows.extend(spline_ablation(n_rows))
    return ExperimentResult(
        experiment="ablations",
        description="Design-choice ablations (margins, outlier index, bucketing, splines)",
        rows=rows,
    )
