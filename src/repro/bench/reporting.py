"""Plain-text reporting of experiment results.

Every experiment driver returns an :class:`ExperimentResult`: a list of
uniform row dicts plus enough metadata to render the paper-style table on a
terminal (the library has no plotting dependency; the rows are the series a
plot would show).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "format_table"]


def format_table(rows: Sequence[Dict[str, object]], *, title: str = "") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(col) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_render(row.get(col, "")) for col in columns]
        rendered_rows.append(rendered)
        for col, cell in zip(columns, rendered):
            widths[col] = max(widths[col], len(cell))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[col]) for col, cell in zip(columns, rendered))
        for rendered in rendered_rows
    )
    parts = [title, header, separator, body] if title else [header, separator, body]
    return "\n".join(part for part in parts if part)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """Uniform container every experiment driver returns."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def table(self) -> str:
        """Paper-style text table of the rows."""
        title = f"[{self.experiment}] {self.description}"
        rendered = format_table(self.rows, title=title)
        if self.notes:
            rendered += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return rendered

    def series(self, key: str) -> List[object]:
        """Column ``key`` across all rows (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]
