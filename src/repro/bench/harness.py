"""Timing and comparison infrastructure shared by every experiment driver."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig
from repro.core.engine import ShardedCOAX
from repro.data.queries import QueryWorkload
from repro.data.table import Table
from repro.indexes.base import MultidimensionalIndex
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.full_scan import FullScanIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.uniform_grid import UniformGridIndex

__all__ = [
    "TimingResult",
    "IndexSpec",
    "ComparisonRow",
    "execute_workload",
    "time_workload",
    "time_batched_queries",
    "count_mismatches",
    "drive_insert_stream",
    "run_comparison",
    "default_index_specs",
    "sharded_index_specs",
]


def _query_batches(workload: QueryWorkload, batch_size: int) -> List[List]:
    """Split a workload into contiguous query batches of ``batch_size``."""
    queries = list(workload)
    return [queries[i : i + batch_size] for i in range(0, len(queries), batch_size)]


def execute_workload(
    index: MultidimensionalIndex,
    workload: QueryWorkload,
    *,
    batch_size: Optional[int] = None,
) -> int:
    """Run every query of ``workload`` against ``index``; return the total result count.

    With ``batch_size`` set the workload is executed through
    ``batch_range_query`` in batches of that size (the read path's batch
    kernels then share directory lookups, translation and delta scans
    across each batch) — including ``batch_size=1``, which exercises the
    batch machinery one query at a time; by default (``None``) queries run
    through ``range_query``.  Results are identical either way.  This is
    the unit of work the pytest-benchmark suites time; it is also handy
    for warm-up runs in examples.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be at least 1 (or None)")
    if batch_size is not None:
        return sum(
            len(result)
            for batch in _query_batches(workload, batch_size)
            for result in index.batch_range_query(batch)
        )
    total = 0
    for query in workload:
        total += len(index.range_query(query))
    return total


@dataclass(frozen=True)
class TimingResult:
    """Per-query latency statistics for one index over one workload."""

    n_queries: int
    total_seconds: float
    mean_ms: float
    median_ms: float
    p95_ms: float
    total_results: int

    @classmethod
    def from_samples(cls, per_query_seconds: Sequence[float], total_results: int) -> "TimingResult":
        """Aggregate raw per-query wall-clock samples."""
        samples = np.asarray(per_query_seconds, dtype=np.float64)
        if len(samples) == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            n_queries=len(samples),
            total_seconds=float(samples.sum()),
            mean_ms=float(samples.mean() * 1e3),
            median_ms=float(np.median(samples) * 1e3),
            p95_ms=float(np.quantile(samples, 0.95) * 1e3),
            total_results=int(total_results),
        )


@dataclass(frozen=True)
class IndexSpec:
    """A named index configuration: how to build it from a table."""

    name: str
    build: Callable[[Table], MultidimensionalIndex]


@dataclass
class ComparisonRow:
    """One row of a comparison experiment: an index on one workload."""

    index_name: str
    dataset: str
    workload: str
    build_seconds: float
    timing: TimingResult
    directory_bytes: int
    data_bytes: int
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict representation used by the text-table reporter."""
        return {
            "index": self.index_name,
            "dataset": self.dataset,
            "workload": self.workload,
            "build_s": round(self.build_seconds, 3),
            "mean_ms": round(self.timing.mean_ms, 3),
            "median_ms": round(self.timing.median_ms, 3),
            "p95_ms": round(self.timing.p95_ms, 3),
            "results": self.timing.total_results,
            "dir_bytes": self.directory_bytes,
            **{key: round(value, 4) for key, value in self.extra.items()},
        }


def time_workload(
    index: MultidimensionalIndex,
    workload: QueryWorkload,
    *,
    batch_size: Optional[int] = None,
) -> TimingResult:
    """Run every query of ``workload`` against ``index`` and time each one.

    With ``batch_size`` set (any value >= 1), execution goes through
    ``batch_range_query`` in batches of that size and each query's latency
    sample is its batch's wall clock divided by the batch length (per-query
    attribution inside a batch is meaningless — the work is shared); mean
    and total are then exact, while median and p95 describe per-batch
    averages.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be at least 1 (or None)")
    samples: List[float] = []
    total_results = 0
    if batch_size is not None:
        for batch in _query_batches(workload, batch_size):
            start = time.perf_counter()
            batch_results = index.batch_range_query(batch)
            elapsed = time.perf_counter() - start
            samples.extend([elapsed / len(batch)] * len(batch))
            total_results += sum(len(result) for result in batch_results)
        return TimingResult.from_samples(samples, total_results)
    for query in workload:
        start = time.perf_counter()
        matches = index.range_query(query)
        samples.append(time.perf_counter() - start)
        total_results += len(matches)
    return TimingResult.from_samples(samples, total_results)


def time_batched_queries(
    index: MultidimensionalIndex,
    queries: Sequence,
    batch_size: int,
    repeats: int,
) -> "tuple[float, List[np.ndarray]]":
    """Best-of-``repeats`` wall clock plus results of batched execution.

    The timing core shared by the read-path, scale and drift experiment
    drivers: the whole workload runs through ``batch_range_query`` in
    batches of ``batch_size``, ``repeats`` times, and the minimum total
    wall clock is reported together with the (repeat-invariant) results
    so the caller can verify them against an oracle.
    """
    queries = list(queries)
    best = np.inf
    results: List[np.ndarray] = []
    for _ in range(max(repeats, 1)):
        run_results: List[np.ndarray] = []
        start = time.perf_counter()
        for begin in range(0, len(queries), batch_size):
            run_results.extend(
                index.batch_range_query(queries[begin : begin + batch_size])
            )
        best = min(best, time.perf_counter() - start)
        results = run_results
    return best, results


def count_mismatches(
    left: Sequence[np.ndarray], right: Sequence[np.ndarray]
) -> int:
    """Number of positionally aligned result pairs that differ.

    The oracle-verification primitive of the read-path, scale and drift
    drivers: every benchmark compares its result lists element-for-element
    through this one definition of equality.
    """
    return sum(
        0 if np.array_equal(a, b) else 1 for a, b in zip(left, right)
    )


def drive_insert_stream(
    index,
    batches: Sequence[Dict[str, np.ndarray]],
    *,
    compact_every: Optional[int] = None,
) -> Dict[str, float]:
    """Feed an insert stream (e.g. a drifting workload) into an index.

    The write-side counterpart of :func:`execute_workload`: every batch
    goes through ``insert_batch`` and, when ``compact_every`` is set, the
    index compacts after each that many batches (and once at the end of
    the stream) — the cadence at which adaptive model maintenance gets to
    act.  Works for anything with the COAX CRUD surface (``COAXIndex``,
    ``ShardedCOAX``).  Returns ``{"rows_inserted", "seconds",
    "compactions"}`` so drivers can report write throughput alongside
    their query numbers.
    """
    if compact_every is not None and compact_every < 1:
        raise ValueError("compact_every must be at least 1 (or None)")
    rows_inserted = 0
    compactions = 0
    start = time.perf_counter()
    for batch_no, batch in enumerate(batches, start=1):
        ids = index.insert_batch(batch)
        rows_inserted += len(ids)
        if compact_every is not None and batch_no % compact_every == 0:
            index.compact()
            compactions += 1
    if compact_every is not None and len(batches) % compact_every != 0:
        index.compact()
        compactions += 1
    return {
        "rows_inserted": float(rows_inserted),
        "seconds": time.perf_counter() - start,
        "compactions": float(compactions),
    }


def run_comparison(
    table: Table,
    workloads: Dict[str, QueryWorkload],
    specs: Sequence[IndexSpec],
    *,
    dataset_name: str = "dataset",
    verify_against: Optional[Table] = None,
    batch_size: Optional[int] = None,
) -> List[ComparisonRow]:
    """Build every index once and time it on every workload.

    With ``verify_against`` set (normally the same table), every index's
    result count is checked against the ground-truth full scan so a
    benchmark can never silently report fast-but-wrong numbers.
    ``batch_size`` switches execution to the batch read path (see
    :func:`time_workload`).
    """
    rows: List[ComparisonRow] = []
    ground_truth: Dict[str, int] = {}
    if verify_against is not None:
        for workload_name, workload in workloads.items():
            ground_truth[workload_name] = int(
                sum(len(verify_against.select(query)) for query in workload)
            )
    for spec in specs:
        start = time.perf_counter()
        index = spec.build(table)
        build_seconds = time.perf_counter() - start
        for workload_name, workload in workloads.items():
            index.stats.reset()
            timing = time_workload(index, workload, batch_size=batch_size)
            if verify_against is not None and timing.total_results != ground_truth[workload_name]:
                raise AssertionError(
                    f"{spec.name} returned {timing.total_results} results on "
                    f"{workload_name}, expected {ground_truth[workload_name]}"
                )
            # Work counters are the substrate-independent comparison metric:
            # wall-clock time in pure Python is dominated by interpreter
            # overhead, while rows/cells examined track what the paper's C
            # implementation would pay for.
            n_queries = max(timing.n_queries, 1)
            extra = {
                "rows_examined_per_q": index.stats.rows_examined / n_queries,
                "cells_visited_per_q": index.stats.cells_visited / n_queries,
            }
            rows.append(
                ComparisonRow(
                    index_name=spec.name,
                    dataset=dataset_name,
                    workload=workload_name,
                    build_seconds=build_seconds,
                    timing=timing,
                    directory_bytes=index.directory_bytes(),
                    data_bytes=index.data_bytes(),
                    extra=extra,
                )
            )
    return rows


def default_index_specs(
    *,
    coax_config: Optional[COAXConfig] = None,
    grid_cells_per_dim: int = 6,
    rtree_capacity: int = 10,
    column_files_cells: int = 8,
    include_full_scan: bool = True,
    engine_shards: Optional[int] = None,
    engine_workers: int = 1,
) -> List[IndexSpec]:
    """The competitor set of Figure 6: COAX, R-Tree, Full Grid, Full Scan.

    Column Files is included as well since Figures 7 and 8 need it; drivers
    that do not want a competitor simply filter the returned list.  With
    ``engine_shards`` set a ``ShardedCOAX`` engine spec with that shard
    count (and ``engine_workers`` scatter threads) joins the set, so any
    comparison driver can put the sharded engine next to the flat indexes
    without special-casing it.
    """
    config = coax_config or COAXConfig()
    specs = [
        IndexSpec("COAX", lambda table, c=config: COAXIndex(table, config=c)),
        IndexSpec("R-Tree", lambda table: RTreeIndex(table, node_capacity=rtree_capacity)),
        IndexSpec(
            "Full Grid",
            lambda table: UniformGridIndex(table, cells_per_dim=grid_cells_per_dim),
        ),
        IndexSpec(
            "Column Files",
            lambda table: ColumnFilesIndex(table, cells_per_dim=column_files_cells),
        ),
    ]
    if engine_shards is not None:
        specs.extend(
            sharded_index_specs(
                shard_counts=(engine_shards,),
                workers=engine_workers,
                coax_config=config,
            )
        )
    if include_full_scan:
        specs.append(IndexSpec("Full Scan", lambda table: FullScanIndex(table)))
    return specs


def sharded_index_specs(
    *,
    shard_counts: Sequence[int] = (1, 2, 4),
    workers: int = 1,
    coax_config: Optional[COAXConfig] = None,
    partitioning: str = "range",
) -> List[IndexSpec]:
    """One ``ShardedCOAX`` spec per shard count, sharing the COAX config.

    ``workers`` is the harness-level parallelism knob: it sizes the
    engine's scatter/build/compact pool for every spec returned (the
    NumPy kernels release the GIL, so query batches genuinely overlap
    shards when the hardware has the cores).
    """
    config = coax_config or COAXConfig()
    return [
        IndexSpec(
            f"ShardedCOAX[s={n_shards},w={workers}]",
            lambda table, n=n_shards: ShardedCOAX(
                table,
                config=EngineConfig(
                    n_shards=n,
                    partitioning=partitioning,
                    workers=workers,
                    coax=config,
                ),
            ),
        )
        for n_shards in shard_counts
    ]
