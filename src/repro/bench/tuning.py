"""Per-index configuration tuning (Section 8.2.1 of the paper).

"In this experiment we measure and compare the execution time for all
indexes.  We use the configuration that performs best for each index.  This
configuration consists of chunk size for the full grid, chunk size and sort
dimension for the column files and COAX, and the node capacity (non-leaf and
leaf capacity) of the R-Tree."

This module implements that tuning step as a small, honest grid search: for
each candidate configuration the index is built, a (sub)workload is timed,
results are verified against ground truth, and the fastest configuration
wins.  Convenience wrappers cover the four structures the paper tunes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bench.harness import execute_workload
from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.queries import QueryWorkload
from repro.data.table import Table
from repro.indexes.base import IndexBuildError, MultidimensionalIndex
from repro.indexes.column_files import ColumnFilesIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.uniform_grid import UniformGridIndex

__all__ = [
    "TuningTrial",
    "TuningResult",
    "grid_search",
    "tune_coax",
    "tune_rtree",
    "tune_uniform_grid",
    "tune_column_files",
]

#: Builds an index from a table and one parameter assignment.
IndexFactory = Callable[[Table, Dict[str, object]], MultidimensionalIndex]


@dataclass(frozen=True)
class TuningTrial:
    """Outcome of one configuration in the search."""

    params: Dict[str, object]
    build_seconds: float
    mean_query_ms: float
    directory_bytes: int
    total_results: int
    failed: bool = False
    failure_reason: str = ""


@dataclass
class TuningResult:
    """Full outcome of a tuning run."""

    trials: List[TuningTrial] = field(default_factory=list)

    @property
    def successful_trials(self) -> List[TuningTrial]:
        """Trials whose configuration could be built and verified."""
        return [trial for trial in self.trials if not trial.failed]

    @property
    def best(self) -> TuningTrial:
        """Fastest successful trial (ties broken by smaller directory)."""
        candidates = self.successful_trials
        if not candidates:
            raise ValueError("no configuration could be built for this tuning run")
        return min(candidates, key=lambda t: (t.mean_query_ms, t.directory_bytes))

    @property
    def best_params(self) -> Dict[str, object]:
        """Parameters of the best trial."""
        return dict(self.best.params)

    def as_rows(self) -> List[Dict[str, object]]:
        """Row dicts for the text reporter."""
        rows = []
        for trial in self.trials:
            row: Dict[str, object] = dict(trial.params)
            row.update(
                {
                    "mean_ms": round(trial.mean_query_ms, 3),
                    "build_s": round(trial.build_seconds, 3),
                    "dir_bytes": trial.directory_bytes,
                }
            )
            if trial.failed:
                row["failed"] = trial.failure_reason
            rows.append(row)
        return rows


def grid_search(
    table: Table,
    workload: QueryWorkload,
    factory: IndexFactory,
    param_grid: Mapping[str, Sequence[object]],
    *,
    verify: bool = True,
) -> TuningResult:
    """Exhaustive search over the Cartesian product of ``param_grid``.

    Every configuration is built once and timed over the full workload.
    With ``verify`` (default) the result count of every configuration is
    checked against the ground-truth full scan, so a configuration can never
    win by returning wrong answers.  Configurations that fail to build (e.g.
    an impossible cell count) are recorded as failed trials rather than
    aborting the search.
    """
    if not param_grid:
        raise ValueError("param_grid must contain at least one parameter")
    expected: Optional[int] = None
    if verify:
        expected = int(sum(len(table.select(query)) for query in workload))

    names = list(param_grid)
    result = TuningResult()
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        try:
            start = time.perf_counter()
            index = factory(table, params)
            build_seconds = time.perf_counter() - start
        except (IndexBuildError, ValueError) as exc:
            result.trials.append(
                TuningTrial(
                    params=params,
                    build_seconds=0.0,
                    mean_query_ms=float("inf"),
                    directory_bytes=0,
                    total_results=0,
                    failed=True,
                    failure_reason=str(exc),
                )
            )
            continue
        start = time.perf_counter()
        total_results = execute_workload(index, workload)
        elapsed = time.perf_counter() - start
        failed = expected is not None and total_results != expected
        result.trials.append(
            TuningTrial(
                params=params,
                build_seconds=build_seconds,
                mean_query_ms=elapsed / max(len(workload), 1) * 1e3,
                directory_bytes=index.directory_bytes(),
                total_results=total_results,
                failed=failed,
                failure_reason="wrong result count" if failed else "",
            )
        )
    return result


# ----------------------------------------------------------------------
# Convenience wrappers for the structures the paper tunes
# ----------------------------------------------------------------------
def tune_coax(
    table: Table,
    workload: QueryWorkload,
    *,
    cells_candidates: Sequence[int] = (2, 4, 8, 16),
    outlier_candidates: Sequence[str] = ("sorted_cell_grid",),
    base_config: Optional[COAXConfig] = None,
) -> Tuple[COAXConfig, TuningResult]:
    """Tune COAX's primary cell count (and optionally the outlier structure)."""
    base = base_config or COAXConfig()

    def factory(data: Table, params: Dict[str, object]) -> MultidimensionalIndex:
        config = COAXConfig(
            detection=base.detection,
            primary_cells_per_dim=int(params["cells_per_dim"]),
            primary_sort_dimension=base.primary_sort_dimension,
            outlier_index=str(params["outlier_index"]),
            outlier_cells_per_dim=max(2, int(params["cells_per_dim"]) // 2),
            outlier_node_capacity=base.outlier_node_capacity,
            max_groups=base.max_groups,
            min_primary_fraction=base.min_primary_fraction,
        )
        return COAXIndex(data, config=config)

    result = grid_search(
        table,
        workload,
        factory,
        {"cells_per_dim": list(cells_candidates), "outlier_index": list(outlier_candidates)},
    )
    best = result.best_params
    best_config = COAXConfig(
        detection=base.detection,
        primary_cells_per_dim=int(best["cells_per_dim"]),
        primary_sort_dimension=base.primary_sort_dimension,
        outlier_index=str(best["outlier_index"]),
        outlier_cells_per_dim=max(2, int(best["cells_per_dim"]) // 2),
        outlier_node_capacity=base.outlier_node_capacity,
        max_groups=base.max_groups,
        min_primary_fraction=base.min_primary_fraction,
    )
    return best_config, result


def tune_rtree(
    table: Table,
    workload: QueryWorkload,
    *,
    capacity_candidates: Sequence[int] = (2, 4, 8, 12, 16, 24, 32),
) -> Tuple[int, TuningResult]:
    """Tune the R-Tree node capacity (paper: 2..32, best usually 8-12)."""

    def factory(data: Table, params: Dict[str, object]) -> MultidimensionalIndex:
        return RTreeIndex(data, node_capacity=int(params["node_capacity"]))

    result = grid_search(table, workload, factory, {"node_capacity": list(capacity_candidates)})
    return int(result.best_params["node_capacity"]), result


def tune_uniform_grid(
    table: Table,
    workload: QueryWorkload,
    *,
    cells_candidates: Sequence[int] = (2, 4, 6, 8, 12, 16),
) -> Tuple[int, TuningResult]:
    """Tune the full grid's cells-per-dimension ("chunk size")."""

    def factory(data: Table, params: Dict[str, object]) -> MultidimensionalIndex:
        return UniformGridIndex(data, cells_per_dim=int(params["cells_per_dim"]))

    result = grid_search(table, workload, factory, {"cells_per_dim": list(cells_candidates)})
    return int(result.best_params["cells_per_dim"]), result


def tune_column_files(
    table: Table,
    workload: QueryWorkload,
    *,
    cells_candidates: Sequence[int] = (2, 4, 8, 16),
    sort_candidates: Optional[Iterable[str]] = None,
) -> Tuple[Dict[str, object], TuningResult]:
    """Tune Column Files' cell count and sorted dimension."""
    sort_dims = list(sort_candidates) if sort_candidates is not None else list(table.schema)

    def factory(data: Table, params: Dict[str, object]) -> MultidimensionalIndex:
        return ColumnFilesIndex(
            data,
            cells_per_dim=int(params["cells_per_dim"]),
            sort_dimension=str(params["sort_dimension"]),
        )

    result = grid_search(
        table,
        workload,
        factory,
        {"cells_per_dim": list(cells_candidates), "sort_dimension": sort_dims},
    )
    return result.best_params, result
