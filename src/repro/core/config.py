"""Configuration of the COAX index and the sharded execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fd.detection import DetectionConfig

__all__ = ["COAXConfig", "EngineConfig"]

#: Index types that may serve as the outlier index.
OUTLIER_INDEX_CHOICES: Tuple[str, ...] = ("sorted_cell_grid", "uniform_grid", "rtree", "full_scan")

#: Partitioning schemes the sharded engine supports.
PARTITIONING_CHOICES: Tuple[str, ...] = ("range", "hash")


@dataclass(frozen=True)
class COAXConfig:
    """All tuning knobs of the COAX build and query pipeline.

    The defaults follow the paper's described configuration: soft FDs are
    detected automatically, the primary index is a quantile grid file with a
    sorted dimension, and outliers go to a conventional multidimensional
    index over all attributes.
    """

    #: Soft-FD detection configuration (sampling, bucketing, thresholds).
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    #: Grid lines per dimension of the primary index.
    primary_cells_per_dim: int = 8
    #: Attribute sorted inside primary cells; ``None`` picks the predictor of
    #: the largest FD group automatically (Section 6 layout).
    primary_sort_dimension: Optional[str] = None
    #: Which structure holds the outliers (all dimensions are indexed there).
    outlier_index: str = "sorted_cell_grid"
    #: Grid lines per dimension for grid-based outlier indexes.
    outlier_cells_per_dim: int = 4
    #: Node capacity when the outlier index is an R-Tree.
    outlier_node_capacity: int = 10
    #: Keep at most this many FD groups (the highest scoring ones); ``None``
    #: keeps all detected groups.
    max_groups: Optional[int] = None
    #: Warn (via the build report) when the primary index would retain less
    #: than this fraction of the data.
    min_primary_fraction: float = 0.5
    #: Compact automatically once this many inserted records are pending in
    #: the delta store; ``None`` disables auto-compaction (compaction is
    #: then entirely manual via :meth:`COAXIndex.compact`).
    auto_compact_threshold: Optional[int] = None
    #: Compact automatically once this fraction of the main-structure rows
    #: is tombstoned by deletes/updates (in ``(0, 1]``); ``None`` leaves
    #: tombstones in place until a manual :meth:`COAXIndex.compact`.
    auto_compact_tombstone_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.primary_cells_per_dim < 1:
            raise ValueError("primary_cells_per_dim must be at least 1")
        if self.outlier_cells_per_dim < 1:
            raise ValueError("outlier_cells_per_dim must be at least 1")
        if self.outlier_index not in OUTLIER_INDEX_CHOICES:
            raise ValueError(
                f"outlier_index must be one of {OUTLIER_INDEX_CHOICES}, got {self.outlier_index!r}"
            )
        if self.max_groups is not None and self.max_groups < 0:
            raise ValueError("max_groups must be non-negative")
        if not 0.0 <= self.min_primary_fraction <= 1.0:
            raise ValueError("min_primary_fraction must be in [0, 1]")
        if self.auto_compact_threshold is not None and self.auto_compact_threshold < 1:
            raise ValueError("auto_compact_threshold must be at least 1 (or None)")
        if self.auto_compact_tombstone_fraction is not None and not (
            0.0 < self.auto_compact_tombstone_fraction <= 1.0
        ):
            raise ValueError(
                "auto_compact_tombstone_fraction must be in (0, 1] (or None)"
            )


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the sharded scatter-gather engine (``ShardedCOAX``).

    The engine splits the table into ``n_shards`` horizontal partitions,
    each backed by its own :class:`~repro.core.coax.COAXIndex` built with
    the shared ``coax`` configuration, and scatters queries over a thread
    pool of ``workers`` (the NumPy kernels release the GIL; ``workers=1``
    is a strictly serial fallback with no pool at all).
    """

    #: Number of horizontal partitions.
    n_shards: int = 4
    #: ``"range"`` partitions on quantile boundaries of one attribute (best
    #: pruning for range workloads); ``"hash"`` spreads rows round-robin by
    #: row id (best write balance, no pruning structure).
    partitioning: str = "range"
    #: Attribute the range partitioner splits on; ``None`` picks the
    #: predictor of the largest FD group (the attribute query translation
    #: concentrates constraints on, so translated queries prune shards).
    partition_dimension: Optional[str] = None
    #: Scatter/build/compact thread-pool size; 1 disables the pool.
    workers: int = 1
    #: Configuration every per-shard COAX index is built with.
    coax: COAXConfig = field(default_factory=COAXConfig)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.partitioning not in PARTITIONING_CHOICES:
            raise ValueError(
                f"partitioning must be one of {PARTITIONING_CHOICES}, "
                f"got {self.partitioning!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
