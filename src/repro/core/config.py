"""Configuration of the COAX index and the sharded execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fd.detection import DetectionConfig

__all__ = ["COAXConfig", "EngineConfig", "LayoutConfig", "MaintenanceConfig"]

#: Index types that may serve as the outlier index.
OUTLIER_INDEX_CHOICES: Tuple[str, ...] = ("sorted_cell_grid", "uniform_grid", "rtree", "full_scan")

#: Partitioning schemes the sharded engine supports.
PARTITIONING_CHOICES: Tuple[str, ...] = ("range", "hash")

#: Scatter-executor kinds of the sharded engine: ``"thread"`` runs shard
#: scans on a thread pool (NumPy kernels release the GIL), ``"process"``
#: on worker processes that attach to mmap-backed shard replicas, which
#: also parallelises the Python-level planner/merge glue.
EXECUTOR_CHOICES: Tuple[str, ...] = ("thread", "process")


@dataclass(frozen=True)
class MaintenanceConfig:
    """Refresh thresholds of drift-aware adaptive model maintenance.

    When ``enabled``, every inserted batch is streamed into a per-model
    :class:`~repro.fd.maintenance.ModelMonitor` (Bayesian posterior update
    plus outside-margin and residual-drift tracking), and each compaction
    consults the monitors to pick one of three refresh tiers per model:
    *reuse* (today's fast incremental compact), *re-estimate margins*
    (widen the band pre-emptively, no re-partition needed), or *refit*
    (replace the model from the refreshed posterior and re-partition the
    affected rows).  The escape prediction is Equation 9's mean first exit
    time of a drifting Brownian motion out of the margin band
    (:func:`repro.stats.theory.mean_first_exit_time_with_drift`).

    Disabled by default: the models then stay exactly as built, which is
    the paper's (static) setting.
    """

    #: Master switch; everything below is inert when False.
    enabled: bool = False
    #: Minimum streamed observations per model before any refresh decision
    #: (fewer observations always decide "reuse").
    min_observations: int = 256
    #: Residuals farther than this many margin-band widths from the line
    #: are treated as outliers and excluded from the posterior/drift
    #: statistics (the routing masks still count them as outside).
    update_band_factor: float = 3.0
    #: Re-estimate margins when the Equation-9 exit capacity drops below
    #: this fraction of the driftless capacity (drift is about to push the
    #: residual walk out of the band).
    remargin_capacity_ratio: float = 0.5
    #: Re-estimate margins when the streamed outside-margin fraction
    #: exceeds the build-time baseline by this much.
    remargin_outside_excess: float = 0.08
    #: Refit + re-partition when the streamed outside-margin fraction
    #: exceeds the build-time baseline by this much (the band has already
    #: escaped; widening alone cannot recover the primary fraction).
    refit_outside_excess: float = 0.25
    #: Refit when the refreshed posterior slope differs from the current
    #: model slope by this relative amount.
    refit_slope_shift: float = 0.25
    #: Refit when the refreshed posterior intercept moved by more than
    #: this many margin-band widths (the line itself has drifted away).
    refit_intercept_bands: float = 1.0
    #: Symmetric margin width of refreshed models, in posterior noise
    #: standard deviations (mirrors ``DetectionConfig.margin_sigmas``).
    margin_sigmas: float = 3.0

    def __post_init__(self) -> None:
        if self.min_observations < 2:
            raise ValueError("min_observations must be at least 2")
        if self.update_band_factor <= 0:
            raise ValueError("update_band_factor must be positive")
        if not 0.0 < self.remargin_capacity_ratio <= 1.0:
            raise ValueError("remargin_capacity_ratio must be in (0, 1]")
        for name in (
            "remargin_outside_excess",
            "refit_outside_excess",
            "refit_slope_shift",
            "refit_intercept_bands",
            "margin_sigmas",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.refit_outside_excess < self.remargin_outside_excess:
            raise ValueError(
                "refit_outside_excess must be at least remargin_outside_excess"
            )


@dataclass(frozen=True)
class LayoutConfig:
    """Workload-adaptive shard layout (``ShardedCOAX`` re-partitioning).

    When ``enabled``, the engine feeds a bounded sketch of recent query
    intervals on the partition dimension — plus per-shard hit / prune /
    rows-examined counters — into a
    :class:`~repro.core.layout.LayoutMonitor`.  At every *full*
    :meth:`~repro.core.engine.ShardedCOAX.compact` the monitor proposes
    new range boundaries (a weighted-quantile split of the query-mass
    histogram, optionally changing the shard count within
    ``[min_shards, max_shards]``) and the engine adopts them only when
    the cost model predicts at least a ``min_gain`` reduction of rows
    examined on the sketched workload.  Re-partitioning reuses the
    transactional reclaim-rebuild path, so results stay bit-identical
    across a layout change.

    Disabled by default: the partition boundaries then stay exactly as
    built (static quantiles of the build data), the paper's setting.
    """

    #: Master switch; everything below is inert when False.
    enabled: bool = False
    #: Ring-buffer capacity of sketched query intervals (older queries
    #: are overwritten, so the sketch tracks the *recent* workload).
    sketch_size: int = 512
    #: Resolution of the query-mass histogram the quantile split uses.
    histogram_bins: int = 64
    #: Minimum sketched queries before any proposal (fewer always vetoes).
    min_queries: int = 256
    #: Adopt a proposal only when ``old_cost / new_cost`` is at least
    #: this factor on the sketched workload (hysteresis against churn).
    min_gain: float = 1.2
    #: Smallest shard count a proposal may choose.
    min_shards: int = 1
    #: Largest shard count a proposal may choose; ``None`` keeps the
    #: current shard count as the ceiling (boundaries move, count fixed).
    max_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sketch_size < 1:
            raise ValueError("sketch_size must be at least 1")
        if self.histogram_bins < 2:
            raise ValueError("histogram_bins must be at least 2")
        if self.min_queries < 1:
            raise ValueError("min_queries must be at least 1")
        if self.min_gain < 1.0:
            raise ValueError("min_gain must be at least 1.0")
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards is not None and self.max_shards < self.min_shards:
            raise ValueError("max_shards must be at least min_shards")


@dataclass(frozen=True)
class COAXConfig:
    """All tuning knobs of the COAX build and query pipeline.

    The defaults follow the paper's described configuration: soft FDs are
    detected automatically, the primary index is a quantile grid file with a
    sorted dimension, and outliers go to a conventional multidimensional
    index over all attributes.
    """

    #: Soft-FD detection configuration (sampling, bucketing, thresholds).
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    #: Grid lines per dimension of the primary index.
    primary_cells_per_dim: int = 8
    #: Attribute sorted inside primary cells; ``None`` picks the predictor of
    #: the largest FD group automatically (Section 6 layout).
    primary_sort_dimension: Optional[str] = None
    #: Which structure holds the outliers (all dimensions are indexed there).
    outlier_index: str = "sorted_cell_grid"
    #: Grid lines per dimension for grid-based outlier indexes.
    outlier_cells_per_dim: int = 4
    #: Node capacity when the outlier index is an R-Tree.
    outlier_node_capacity: int = 10
    #: Keep at most this many FD groups (the highest scoring ones); ``None``
    #: keeps all detected groups.
    max_groups: Optional[int] = None
    #: Warn (via the build report) when the primary index would retain less
    #: than this fraction of the data.
    min_primary_fraction: float = 0.5
    #: Compact automatically once this many inserted records are pending in
    #: the delta store; ``None`` disables auto-compaction (compaction is
    #: then entirely manual via :meth:`COAXIndex.compact`).
    auto_compact_threshold: Optional[int] = None
    #: Compact automatically once this fraction of the main-structure rows
    #: is tombstoned by deletes/updates (in ``(0, 1]``); ``None`` leaves
    #: tombstones in place until a manual :meth:`COAXIndex.compact`.
    auto_compact_tombstone_fraction: Optional[float] = None
    #: Drift-aware adaptive model maintenance (disabled by default — the
    #: learned models are then frozen at build time, the paper's setting).
    maintenance: MaintenanceConfig = field(default_factory=MaintenanceConfig)

    def __post_init__(self) -> None:
        if self.primary_cells_per_dim < 1:
            raise ValueError("primary_cells_per_dim must be at least 1")
        if self.outlier_cells_per_dim < 1:
            raise ValueError("outlier_cells_per_dim must be at least 1")
        if self.outlier_index not in OUTLIER_INDEX_CHOICES:
            raise ValueError(
                f"outlier_index must be one of {OUTLIER_INDEX_CHOICES}, got {self.outlier_index!r}"
            )
        if self.max_groups is not None and self.max_groups < 0:
            raise ValueError("max_groups must be non-negative")
        if not 0.0 <= self.min_primary_fraction <= 1.0:
            raise ValueError("min_primary_fraction must be in [0, 1]")
        if self.auto_compact_threshold is not None and self.auto_compact_threshold < 1:
            raise ValueError("auto_compact_threshold must be at least 1 (or None)")
        if self.auto_compact_tombstone_fraction is not None and not (
            0.0 < self.auto_compact_tombstone_fraction <= 1.0
        ):
            raise ValueError(
                "auto_compact_tombstone_fraction must be in (0, 1] (or None)"
            )


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the sharded scatter-gather engine (``ShardedCOAX``).

    The engine splits the table into ``n_shards`` horizontal partitions,
    each backed by its own :class:`~repro.core.coax.COAXIndex` built with
    the shared ``coax`` configuration, and scatters queries over a thread
    pool of ``workers`` (the NumPy kernels release the GIL; ``workers=1``
    is a strictly serial fallback with no pool at all).
    """

    #: Number of horizontal partitions.
    n_shards: int = 4
    #: ``"range"`` partitions on quantile boundaries of one attribute (best
    #: pruning for range workloads); ``"hash"`` spreads rows round-robin by
    #: row id (best write balance, no pruning structure).
    partitioning: str = "range"
    #: Attribute the range partitioner splits on; ``None`` picks the
    #: predictor of the largest FD group (the attribute query translation
    #: concentrates constraints on, so translated queries prune shards).
    partition_dimension: Optional[str] = None
    #: Scatter/build/compact thread-pool size; 1 disables the pool.
    workers: int = 1
    #: Batch-scatter execution backend: ``"thread"`` (default) scans shards
    #: on the worker thread pool; ``"process"`` dispatches batch scans to
    #: worker processes attached to mmap-backed shard replicas (builds,
    #: mutations, compaction and scalar queries stay on threads either way).
    executor: str = "thread"
    #: Configuration every per-shard COAX index is built with.
    coax: COAXConfig = field(default_factory=COAXConfig)
    #: Workload-adaptive layout (disabled by default: static boundaries).
    layout: LayoutConfig = field(default_factory=LayoutConfig)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.layout.enabled and self.partitioning != "range":
            raise ValueError(
                "adaptive layout learns range boundaries; it requires "
                'partitioning="range"'
            )
        if self.partitioning not in PARTITIONING_CHOICES:
            raise ValueError(
                f"partitioning must be one of {PARTITIONING_CHOICES}, "
                f"got {self.partitioning!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_CHOICES}, got {self.executor!r}"
            )
