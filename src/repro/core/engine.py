"""Sharded scatter-gather execution engine over per-shard COAX indexes.

The paper's correlation-aware design keeps each query cheap; this module
makes the *system* scale the way partitioned learned indexes (Flood,
Tsunami) do in production: the table is split into ``n_shards`` horizontal
partitions, each backed by its own :class:`~repro.core.coax.COAXIndex`
over a shard-local table, behind the same
:class:`~repro.indexes.base.MultidimensionalIndex` API — every bench,
example and test that speaks that API runs unchanged against the engine.

Design pillars
--------------

* **Global-id mapping.**  The library-wide invariant *row id == table
  position* is preserved at the global level through an explicit
  global-id ↔ (shard, local position) mapping (``_shard_of`` /
  ``_local_of`` / per-shard ``_global_of``).  Each shard keeps the same
  invariant locally, so the mapping only ever *appends*: COAX never
  renumbers local ids, hence a global id resolves to the same (shard,
  local) pair for the lifetime of the record.
* **Partitioning.**  ``range`` partitioning splits on quantile boundaries
  of one attribute — by default the predictor of the largest FD group,
  the attribute query translation concentrates constraints on, so
  translated queries align with the partition boundaries and prune
  shards.  ``hash`` partitioning spreads rows round-robin by global id
  for write balance.  Rows are never migrated between shards: an update
  that moves a row's partition key out of its shard's nominal range just
  grows that shard's bounding boxes, which keeps pruning conservative
  instead of requiring cross-shard moves.
* **Shard pruning.**  A shard is dispatched only when the FD-translated
  rectangle intersects its primary (inlier) bounding box, or the original
  rectangle intersects its outlier box or its pending-delta box — the
  same empty / no-inlier / bounding-box rules of
  :func:`repro.core.planner.plan_query`, lifted to whole shards; skipped
  shards are counted in ``QueryStats.shards_pruned``.  The three boxes
  are conservative hulls (they grow with inserts and shrink only when a
  shard compaction rebuilds them from survivors), so pruning can hide no
  live row.
* **Scatter/gather.**  ``batch_range_query`` plans and translates the
  whole batch once (columnar bound matrices), scatters each shard's
  surviving sub-batch across a thread pool (the NumPy kernels release the
  GIL; ``workers=1`` falls back to a strictly serial loop), and gathers
  with the existing fused-key merge
  (:func:`repro.core.results.merge_flat_row_ids`).  Results are
  bit-identical to an unsharded COAX index over the same data.
* **Process execution.**  With ``executor="process"`` batch scatters run
  on worker *processes* instead of threads, which parallelises the
  Python-level planner/merge glue the GIL serialises on the thread pool.
  Each worker attaches to an mmap-backed columnar replica of its shard —
  the engine spills a shard to a format-v6 archive on first dispatch and
  re-spills only after a mutation bumped the shard's generation counter —
  so the workers share the page cache with the parent and receive only
  the sliced bound matrices per task, never the data.  Replica scans are
  bit-identical (ids, order *and* stats) to the in-process shard scans:
  structured restore reattaches the very same derived structures the
  parent holds.  Builds, mutations, compactions and scalar queries stay
  on threads either way.
* **Independent per-shard compaction.**  Every shard carries its own
  delta store, tombstones and auto-compaction triggers, so reclaim work
  is amortised shard by shard as writes land instead of a stop-the-world
  pass; :meth:`ShardedCOAX.compact` forces all shards (in parallel when
  ``workers > 1``) and ``compact(shard=s)`` exactly one.
* **Concurrency.**  The engine is a single-writer structure: mutation
  entry points hold the engine lock, per-shard work additionally holds
  the shard's lock, and scatter workers take the shard lock around each
  query — concurrent readers can never observe a half-applied batch (see
  the contract in :mod:`repro.indexes.base`).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.coax import COAXBuildReport, COAXIndex, learn_groups
from repro.core.config import COAXConfig, EngineConfig
from repro.core.delta import BatchLike, coerce_batch
from repro.core.layout import LayoutMonitor, LayoutProposal
from repro.fd.maintenance import REUSE, MaintenanceManager
from repro.core.planner import batch_overlaps_box, plan_query_flags
from repro.core.query_translation import (
    translate_bounds_batch,
    translate_query,
    translated_predictor_interval,
)
from repro.core.results import merge_flat_row_ids, merge_row_ids, split_counter_evenly
from repro.data.executors import Aggregate, AggregatePartial, TopK, merge_topk
from repro.data.predicates import Rectangle, batch_bounds
from repro.data.table import Table
from repro.fd.groups import FDGroup, per_model_inlier_masks
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, QueryStats

__all__ = ["EngineClosedError", "ShardedCOAX"]

_T = TypeVar("_T")
_R = TypeVar("_R")


class EngineClosedError(RuntimeError):
    """Raised when a query reaches an engine after :meth:`ShardedCOAX.shutdown`.

    The serving layer calls engine entry points from worker threads while
    the process may concurrently be tearing the engine down; this typed
    error lets a server distinguish "the engine is going away" (drain the
    connection gracefully) from a genuine execution failure.  It is also
    raised — instead of the executor's bare ``RuntimeError`` — when a
    scatter races a concurrent :meth:`ShardedCOAX.close` onto an already
    shut-down worker pool.
    """


def _stats_snapshot(stats: QueryStats) -> Tuple[int, ...]:
    """Immutable copy of the counters a shard task may advance."""
    return (
        stats.queries,
        stats.rows_examined,
        stats.rows_matched,
        stats.cells_visited,
        stats.nodes_visited,
        stats.aggregates,
        stats.knn_queries,
        stats.rings_expanded,
    )


def _stats_delta(before: Tuple[int, ...], stats: QueryStats) -> QueryStats:
    """Counter advance of one shard between a snapshot and now."""
    return QueryStats(
        queries=stats.queries - before[0],
        rows_examined=stats.rows_examined - before[1],
        rows_matched=stats.rows_matched - before[2],
        cells_visited=stats.cells_visited - before[3],
        nodes_visited=stats.nodes_visited - before[4],
        aggregates=stats.aggregates - before[5],
        knn_queries=stats.knn_queries - before[6],
        rings_expanded=stats.rings_expanded - before[7],
    )


def _stats_counters(delta: QueryStats) -> Tuple[int, ...]:
    """Process-transport form of a counter delta (inverse of the literal below)."""
    return (
        delta.queries,
        delta.rows_examined,
        delta.rows_matched,
        delta.cells_visited,
        delta.nodes_visited,
        delta.aggregates,
        delta.knn_queries,
        delta.rings_expanded,
    )


def _stats_from_counters(counters: Tuple[int, ...]) -> QueryStats:
    """Rebuild a counter delta shipped back from a worker process."""
    return QueryStats(
        queries=counters[0],
        rows_examined=counters[1],
        rows_matched=counters[2],
        cells_visited=counters[3],
        nodes_visited=counters[4],
        aggregates=counters[5],
        knn_queries=counters[6],
        rings_expanded=counters[7],
    )


#: Per-worker-process cache of mmap-attached shard replicas, keyed by
#: shard number.  The spill path encodes the shard's generation, so a
#: path mismatch means the parent re-spilled after a mutation and the
#: stale replica is dropped; each engine owns its own process pool, so
#: shard numbers cannot collide across engines within one worker.
_REPLICA_CACHE: Dict[int, Tuple[str, "COAXIndex"]] = {}


def _scatter_worker(payload):
    """One shard sub-batch scan inside a worker process.

    Attaches (or reuses) the shard's mmap-backed replica, runs the same
    ``batch_scatter_flat`` core the thread path runs — the sub-batch is
    pre-sliced, so local slot ``i`` is sub-query ``i`` — and returns flat
    local ids, sub-batch query slots and the stats counter advance.  The
    replica is restored from the shard's own persisted structures, so ids,
    order and counters are bit-identical to scanning the live shard.
    """
    (
        shard_no,
        spill_path,
        sub_queries,
        sub_bounds,
        sub_translated,
        use_primary,
        use_outlier,
    ) = payload
    cached = _REPLICA_CACHE.get(shard_no)
    if cached is None or cached[0] != spill_path:
        # Imported lazily: persistence imports this module at top level.
        from repro.io.persistence import load_index

        replica = load_index(spill_path)
        _REPLICA_CACHE[shard_no] = (spill_path, replica)
    else:
        replica = cached[1]
    n_sub = len(sub_queries)
    before = _stats_snapshot(replica.stats)
    local_ids, sub_qids = replica.batch_scatter_flat(
        sub_queries,
        np.arange(n_sub, dtype=np.int64),
        sub_bounds,
        sub_translated,
        use_primary,
        use_outlier,
        n_sub,
    )
    delta = _stats_delta(before, replica.stats)
    return (local_ids, sub_qids, _stats_counters(delta))


def _aggregate_worker(payload):
    """One shard sub-batch aggregate fold inside a worker process.

    The twin of :func:`_scatter_worker` for the aggregate executor: it
    runs the same ``batch_scatter_aggregate`` core the thread path runs
    and ships back only the :class:`AggregatePartial` state arrays —
    O(sub-batch) floats — plus the stats counter advance, never row ids.
    """
    (
        shard_no,
        spill_path,
        sub_queries,
        sub_bounds,
        sub_translated,
        use_primary,
        use_outlier,
        spec,
    ) = payload
    cached = _REPLICA_CACHE.get(shard_no)
    if cached is None or cached[0] != spill_path:
        from repro.io.persistence import load_index

        replica = load_index(spill_path)
        _REPLICA_CACHE[shard_no] = (spill_path, replica)
    else:
        replica = cached[1]
    n_sub = len(sub_queries)
    before = _stats_snapshot(replica.stats)
    partial = replica.batch_scatter_aggregate(
        sub_queries,
        np.arange(n_sub, dtype=np.int64),
        sub_bounds,
        sub_translated,
        use_primary,
        use_outlier,
        n_sub,
        spec,
    )
    delta = _stats_delta(before, replica.stats)
    return (partial.state(), _stats_counters(delta))


class ShardedCOAX(MultidimensionalIndex):
    """Scatter-gather facade over ``n_shards`` independent COAX indexes.

    Implements the :class:`MultidimensionalIndex` API (queries return
    *global* row ids, bit-identical to an unsharded ``COAXIndex`` over the
    same data) plus the full COAX CRUD surface — ``insert_batch`` /
    ``delete_batch`` / ``update_batch`` / ``compact`` — routed per shard
    through the global-id mapping.
    """

    name = "sharded_coax"

    def __init__(
        self,
        table: Table,
        *,
        config: Optional[EngineConfig] = None,
        groups: Optional[Sequence[FDGroup]] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        config = config if config is not None else EngineConfig()
        self._config = config
        self._table = table
        self._dimensions = tuple(dimensions) if dimensions else tuple(table.schema)
        for dim in self._dimensions:
            if dim not in table.schema:
                raise IndexBuildError(f"dimension {dim!r} is not in the table schema")
        self.stats = QueryStats()
        self._write_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._process_pools: Optional[List[ProcessPoolExecutor]] = None
        self._spill_lock = threading.Lock()
        self._spill_dir: Optional[str] = None
        self._generations: List[int] = [0] * config.n_shards
        self._spilled: List[Optional[Tuple[int, str]]] = [None] * config.n_shards

        # The FD groups are learned ONCE over the full table and shared by
        # every shard: per-shard detection could fit different models and
        # make the shards' query-translation semantics diverge.
        if groups is None:
            learned = learn_groups(table, config.coax.detection, self._dimensions)
        else:
            learned = list(groups)
        if config.coax.max_groups is not None:
            learned = learned[: config.coax.max_groups]
        self._groups: List[FDGroup] = [
            group
            for group in learned
            if all(attr in self._dimensions for attr in group.attributes)
        ]

        # Drift-aware maintenance is engine-owned: ONE shared manager
        # streams every insert and coordinates refreshes at engine-level
        # compaction, while the per-shard indexes are built with
        # maintenance disabled — a shard refreshing its own models
        # independently would make the shards' translation semantics
        # diverge.  All shards therefore keep identical groups forever.
        self._maintenance: Optional[MaintenanceManager] = None
        self._shard_config: COAXConfig = config.coax
        if config.coax.maintenance.enabled:
            self._shard_config = replace(
                config.coax,
                maintenance=replace(config.coax.maintenance, enabled=False),
            )

        # Partitioning scheme: quantile boundaries for range, id modulo for
        # hash.  Boundaries are fixed at build time; later inserts are
        # routed against them, so shards stay balanced for stationary
        # streams and pruning stays correct (boxes, not nominal ranges,
        # decide visibility) for drifting ones.
        self._partition_dim: Optional[str] = None
        self._boundaries = np.empty(0, dtype=np.float64)
        if config.partitioning == "range":
            self._partition_dim = (
                config.partition_dimension or self._default_partition_dimension()
            )
            if self._partition_dim not in self._dimensions:
                raise IndexBuildError(
                    f"partition dimension {self._partition_dim!r} must be one of the "
                    f"indexed dimensions {self._dimensions}"
                )
            if config.n_shards > 1 and table.n_rows:
                fractions = np.arange(1, config.n_shards) / config.n_shards
                self._boundaries = np.quantile(
                    table.column(self._partition_dim), fractions
                )
            else:
                self._boundaries = np.zeros(config.n_shards - 1, dtype=np.float64)

        # Workload-adaptive layout: the monitor sketches query intervals
        # on the partition dimension and full compactions consult it (see
        # compact()).  Range partitioning only — config validation rejects
        # the hash combination — and engine-owned like maintenance, so one
        # decision re-partitions every shard consistently.
        self._layout: Optional[LayoutMonitor] = None
        if config.layout.enabled and config.partitioning == "range":
            self._layout = LayoutMonitor(config.layout, config.n_shards)

        # Scatter the build rows and construct one COAX index per shard —
        # in parallel when workers > 1 (each build is independent NumPy
        # work over its own partition).
        n_rows = table.n_rows
        assignment = self._route(table.columns(), np.arange(n_rows, dtype=np.int64))
        shard_global_ids = [
            np.flatnonzero(assignment == shard_no).astype(np.int64)
            for shard_no in range(config.n_shards)
        ]

        def build_shard(global_ids: np.ndarray) -> COAXIndex:
            return COAXIndex(
                table.take(global_ids),
                config=self._shard_config,
                groups=self._groups,
                dimensions=self._dimensions,
            )

        self._shards: List[COAXIndex] = self._map_shards(build_shard, shard_global_ids)
        if config.coax.maintenance.enabled and self._groups:
            self._maintenance = MaintenanceManager(
                self._groups,
                config.coax.maintenance,
                self._aggregate_inlier_fractions(),
            )

        # Global-id ↔ (shard, local position) mapping.  ``_global_of[s]``
        # is indexed by shard-local row id (== local table position, the
        # per-shard invariant) and only ever appends, because local ids
        # are never renumbered or reused.
        self._shard_of = assignment.astype(np.int64)
        self._local_of = np.empty(n_rows, dtype=np.int64)
        for global_ids in shard_global_ids:
            self._local_of[global_ids] = np.arange(len(global_ids), dtype=np.int64)
        self._global_of: List[np.ndarray] = [ids.copy() for ids in shard_global_ids]
        self._next_global_id = int(n_rows)

    # ------------------------------------------------------------------
    # Build helpers
    # ------------------------------------------------------------------
    def _default_partition_dimension(self) -> str:
        """Predictor of the largest FD group, else the first dimension.

        Mirrors ``COAXIndex._default_sort_dimension``: translated queries
        concentrate their constraints on that predictor, so range
        boundaries on it give the planner-style pruning real bite.
        """
        for group in sorted(self._groups, key=lambda g: -g.n_attributes):
            if group.predictor in self._dimensions:
                return group.predictor
        return self._dimensions[0]

    def _route(
        self, columns: Mapping[str, np.ndarray], global_ids: np.ndarray
    ) -> np.ndarray:
        """Shard number for every row of a (build or insert) batch."""
        if self._config.partitioning == "range" and self._config.n_shards > 1:
            values = np.asarray(columns[self._partition_dim], dtype=np.float64)
            return np.searchsorted(self._boundaries, values, side="right").astype(
                np.int64
            )
        if self._config.n_shards == 1:
            return np.zeros(len(global_ids), dtype=np.int64)
        return np.asarray(global_ids, dtype=np.int64) % self._config.n_shards

    def _aggregate_inlier_fractions(self) -> Dict[str, float]:
        """Engine-wide per-model inlier fractions (row-weighted over shards).

        The build baseline the shared drift monitors compare the streamed
        outside-margin fraction against.
        """
        totals: Dict[str, float] = {}
        weights: Dict[str, float] = {}
        for shard in self._shards:
            n_rows = shard.n_rows
            if not n_rows:
                continue
            for name, fraction in shard.partition.per_model_inlier_fraction.items():
                totals[name] = totals.get(name, 0.0) + fraction * n_rows
                weights[name] = weights.get(name, 0.0) + n_rows
        return {
            name: totals[name] / weights[name]
            for name in totals
            if weights[name] > 0
        }

    def _map_shards(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Run ``fn`` over ``items`` — on the worker pool when configured.

        Order-preserving either way, so scatter results line up with their
        shard numbers regardless of completion order.
        """
        items = list(items)
        if self._config.workers > 1 and len(items) > 1:
            executor = self._ensure_executor()
            try:
                # Explicit submits instead of ``executor.map``: submission
                # failures (a pool a concurrent ``close``/``shutdown`` just
                # shut down) surface here synchronously and become the
                # typed error, while exceptions raised *inside* ``fn``
                # propagate from ``result()`` untouched.
                futures = [executor.submit(fn, item) for item in items]
            except RuntimeError as exc:
                raise EngineClosedError(
                    "engine worker pool was shut down while dispatching"
                ) from exc
            return [future.result() for future in futures]
        return [fn(item) for item in items]

    def _check_open(self) -> None:
        """Raise :class:`EngineClosedError` after :meth:`shutdown`."""
        if self._closed:
            raise EngineClosedError("engine has been shut down")

    def _ensure_executor(self) -> ThreadPoolExecutor:
        """The lazily created scatter pool (``workers`` threads)."""
        self._check_open()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._config.workers,
                thread_name_prefix="sharded-coax",
            )
        return self._executor

    def _ensure_process_pools(self) -> List[ProcessPoolExecutor]:
        """The lazily created worker pools (one single-process pool per slot).

        Shard ``s`` is always dispatched to slot ``s % workers``, so every
        worker process attaches (and caches) only the replicas of its own
        residue class — at most ``ceil(n_shards / workers)`` per worker —
        instead of every worker eventually touching every shard.  A shared
        pool with arbitrary task placement keeps hitting cold
        (worker, shard) pairs; pinned slots warm up after one batch.

        Prefers the ``fork`` start method: the workers inherit the loaded
        modules and start in milliseconds; replicas are attached from disk
        either way, so no engine state needs to survive the fork.
        """
        self._check_open()
        if self._process_pools is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._process_pools = [
                ProcessPoolExecutor(max_workers=1, mp_context=context)
                for _ in range(self._config.workers)
            ]
        return self._process_pools

    def _note_shard_mutation(self, shard_nos) -> None:
        """Bump the mutated shards' generation counters (mutation entry
        points call this *after* the mutation fully landed, so a replica
        spilled under the new generation is always a complete snapshot)."""
        for shard_no in np.atleast_1d(np.asarray(shard_nos, dtype=np.int64)):
            self._generations[int(shard_no)] += 1

    def _ensure_spilled(self, shard_no: int) -> str:
        """Path of an up-to-date mmap-able replica archive of one shard.

        Spills the shard to a format-v6 columnar directory on first use
        and after every generation bump; the path encodes the generation,
        so worker processes detect staleness by path comparison alone.
        The archive write is atomic (tmp dir + rename), so a worker can
        never attach a torn replica.
        """
        with self._spill_lock:
            generation = self._generations[shard_no]
            spilled = self._spilled[shard_no]
            if spilled is not None and spilled[0] == generation:
                return spilled[1]
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="coax-scatter-")
            path = os.path.join(self._spill_dir, f"shard{shard_no}.g{generation}")
            from repro.io.persistence import save_index

            save_index(self._shards[shard_no], path)
            if spilled is not None and os.path.exists(spilled[1]):
                shutil.rmtree(spilled[1], ignore_errors=True)
            self._spilled[shard_no] = (generation, path)
            return path

    def close(self) -> None:
        """Release execution resources (idempotent; queries stay usable
        serially afterwards, and the pools are recreated on demand).

        Shuts down the thread pool and the process pool (waiting for
        in-flight work), and removes the spilled replica archives — the
        worker-side mmap handles die with the worker processes.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._process_pools is not None:
            for pool in self._process_pools:
                pool.shutdown(wait=True)
            self._process_pools = None
        with self._spill_lock:
            if self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_dir = None
            self._spilled = [None] * len(self._shards)

    def shutdown(self) -> None:
        """Terminally close the engine (idempotent).

        Unlike :meth:`close` — which only releases pools/spills and lets
        later queries recreate them — ``shutdown`` marks the engine closed
        first, so every subsequent query or mutation entry point raises
        :class:`EngineClosedError` instead of resurrecting resources.  The
        closed flag is set under the engine lock, which serialises the
        shutdown against in-flight mutations; readers racing the pool
        teardown get the same typed error from the dispatch guards.  This
        is the teardown path the serving layer uses: worker threads still
        holding a reference fail fast and typed rather than crashing on a
        shut-down pool.
        """
        with self._write_lock:
            self._closed = True
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; queries then raise typed errors."""
        return self._closed

    def __enter__(self) -> "ShardedCOAX":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The engine configuration (shards, partitioning, workers)."""
        return self._config

    @property
    def n_shards(self) -> int:
        """Number of horizontal partitions."""
        return self._config.n_shards

    @property
    def workers(self) -> int:
        """Scatter/build/compact thread-pool size (1 = serial)."""
        return self._config.workers

    @property
    def executor(self) -> str:
        """Batch-scatter backend: ``"thread"`` or ``"process"``."""
        return self._config.executor

    @property
    def shards(self) -> Tuple[COAXIndex, ...]:
        """The per-shard COAX indexes, in shard order."""
        return tuple(self._shards)

    @property
    def groups(self) -> Tuple[FDGroup, ...]:
        """The FD groups shared by every shard."""
        return tuple(self._groups)

    @property
    def maintenance(self) -> Optional[MaintenanceManager]:
        """The engine-wide shared drift monitors (``None`` when disabled).

        Shards never carry their own manager: refresh is coordinated here
        so all shards keep identical groups.
        """
        return self._maintenance

    @property
    def layout(self) -> Optional[LayoutMonitor]:
        """The workload-layout monitor (``None`` when adaptation is off).

        Like maintenance it is strictly engine-owned: one sketch, one
        decision, every shard re-partitioned consistently.
        """
        return self._layout

    @property
    def partition_dimension(self) -> Optional[str]:
        """Attribute the range partitioner splits on (``None`` for hash)."""
        return self._partition_dim

    @property
    def shard_boundaries(self) -> np.ndarray:
        """Range-partition boundaries (``n_shards - 1`` ascending values)."""
        return self._boundaries

    @property
    def shard_reports(self) -> List[COAXBuildReport]:
        """Per-shard build reports, in shard order."""
        return [shard.build_report for shard in self._shards]

    @property
    def n_rows(self) -> int:
        """Records covered by the main structures (live and tombstoned)."""
        return int(sum(shard.n_rows for shard in self._shards))

    @property
    def n_live(self) -> int:
        """Covered records that are not tombstoned."""
        return int(sum(shard.n_live for shard in self._shards))

    @property
    def n_tombstoned(self) -> int:
        """Covered records marked deleted but not yet reclaimed."""
        return int(sum(shard.n_tombstoned for shard in self._shards))

    @property
    def tombstone_fraction(self) -> float:
        """Tombstoned share of the covered rows across all shards."""
        n_rows = self.n_rows
        return self.n_tombstoned / n_rows if n_rows else 0.0

    @property
    def tombstone_mask(self) -> Optional[np.ndarray]:
        """Tombstones live per shard; the facade keeps no global bitmap."""
        return None

    @property
    def n_pending(self) -> int:
        """Inserted records still sitting in some shard's delta store."""
        return int(sum(shard.n_pending for shard in self._shards))

    @property
    def n_pending_primary(self) -> int:
        """Pending records the learned models route to a primary index."""
        return int(sum(shard.n_pending_primary for shard in self._shards))

    @property
    def n_pending_outlier(self) -> int:
        """Pending records violating some margin (outlier-bound)."""
        return int(sum(shard.n_pending_outlier for shard in self._shards))

    @property
    def next_row_id(self) -> int:
        """Global row id the next inserted record will be assigned."""
        return self._next_global_id

    @property
    def row_ids(self) -> np.ndarray:
        """Global row ids covered by the main structures (sorted)."""
        parts = [
            self._global_of[shard_no][shard.row_ids]
            for shard_no, shard in enumerate(self._shards)
            if shard.n_rows
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def live_row_ids(self) -> np.ndarray:
        """Global row ids of covered records that are still live (sorted)."""
        parts = [
            self._global_of[shard_no][shard.live_row_ids()]
            for shard_no, shard in enumerate(self._shards)
            if shard.n_live
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def rows_live(self, row_ids: np.ndarray) -> np.ndarray:
        """Which of ``row_ids`` are covered and not tombstoned (per shard)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        mask = np.zeros(len(row_ids), dtype=bool)
        known = (row_ids >= 0) & (row_ids < self._next_global_id)
        if not known.any():
            return mask
        known_ids = row_ids[known]
        shard_ids = self._shard_of[known_ids]
        known_mask = np.zeros(len(known_ids), dtype=bool)
        for shard_no in np.unique(shard_ids):
            routed = shard_ids == shard_no
            known_mask[routed] = self._shards[shard_no].rows_live(
                self._local_of[known_ids[routed]]
            )
        mask[known] = known_mask
        return mask

    def positions_of(self, row_ids: np.ndarray) -> np.ndarray:
        """Covered ids pass through: global row id == global table position."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return np.empty(0, dtype=np.int64)
        covered = np.zeros(len(row_ids), dtype=bool)
        known = (row_ids >= 0) & (row_ids < self._next_global_id)
        if known.any():
            known_ids = row_ids[known]
            shard_ids = self._shard_of[known_ids]
            known_covered = np.zeros(len(known_ids), dtype=bool)
            for shard_no in np.unique(shard_ids):
                routed = shard_ids == shard_no
                known_covered[routed] = np.isin(
                    self._local_of[known_ids[routed]],
                    self._shards[shard_no].row_ids,
                )
            covered[known] = known_covered
        return row_ids[covered]

    def column(self, name: str) -> np.ndarray:
        """Not provided: record data lives in the shard-local tables."""
        raise NotImplementedError(
            "ShardedCOAX keeps no global column copies; read shard.column() "
            "through the global-id mapping instead"
        )

    # ------------------------------------------------------------------
    # Shard pruning
    # ------------------------------------------------------------------
    def _scalar_visit_mask(self, query: Rectangle, translated: Rectangle) -> List[bool]:
        """Which shards one query must visit (planner rules per shard).

        A shard is visible when the FD-translated rectangle intersects its
        primary box, or the original rectangle intersects its outlier box
        or (when it has pending rows) its delta-store box.  Everything
        else is pruned — correct because the three boxes jointly cover
        every live record of the shard.
        """
        primary_possible = not translated.is_empty and not any(
            translated_predictor_interval(query, group).is_empty
            for group in self._groups
        )
        visits: List[bool] = []
        for shard in self._shards:
            visible = False
            if primary_possible and shard.primary_box is not None:
                visible = translated.overlaps_box(*shard.primary_box)
            if not visible and shard.outlier_box is not None:
                visible = query.overlaps_box(*shard.outlier_box)
            if not visible and shard.n_pending:
                box = shard.delta.box
                visible = box is not None and query.overlaps_box(*box)
            visits.append(visible)
        return visits

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _maintenance_guard(self):
        """Lock excluding queries from a coordinated model refresh.

        With adaptive maintenance enabled, a full compaction can swap the
        models *and* re-partition every shard; a query translating with
        one generation of groups while shards execute another would lose
        rows.  The same hazard exists with adaptive *layout*: a re-layout
        replaces the shard list, the boundaries and the id mapping in one
        step.  Readers therefore serialise against the engine lock in
        either adaptive configuration; the default (frozen) engine keeps
        its lock-free read path, because neither groups nor layout ever
        change.
        """
        if self._maintenance is not None or self._layout is not None:
            return self._write_lock
        return nullcontext()

    def range_query(self, query: Rectangle) -> np.ndarray:
        """Global row ids of records matching ``query`` exactly.

        Scatter-gather over the visible shards; bit-identical (ids and
        order) to an unsharded COAX index over the same data.
        """
        self._check_open()
        if query.is_empty:
            return np.empty(0, dtype=np.int64)
        with self._maintenance_guard():
            return self._range_query_locked(query)

    def _range_query_locked(self, query: Rectangle) -> np.ndarray:
        translated = translate_query(query, self._groups)
        visits = self._scalar_visit_mask(query, translated)
        gathered = QueryStats()
        examined_by = np.zeros(len(self._shards), dtype=np.int64)
        parts: List[np.ndarray] = []
        for shard_no, visible in enumerate(visits):
            if not visible:
                continue
            shard = self._shards[shard_no]
            # Snapshot and delta both inside the shard lock: a concurrent
            # reader advancing the same shard's counters must not be
            # double-counted into this query's delta.
            with shard.write_lock:
                before = _stats_snapshot(shard.stats)
                local_ids = shard.range_query(query)
                parts.append(self._global_of[shard_no][local_ids])
                shard_delta = _stats_delta(before, shard.stats)
            gathered.merge(shard_delta)
            examined_by[shard_no] = shard_delta.rows_examined
        merged = merge_row_ids(parts)
        with self._stats_lock:
            self.stats.record(
                rows_examined=gathered.rows_examined,
                rows_matched=len(merged),
                cells_visited=gathered.cells_visited,
                nodes_visited=gathered.nodes_visited,
                shards_pruned=len(self._shards) - sum(visits),
            )
        if self._layout is not None:
            # Outside the stats lock: the monitor has its own leaf lock.
            visit_mask = np.asarray(visits, dtype=bool)
            interval = translated.interval(self._partition_dim)
            if interval.is_unbounded:
                interval = query.interval(self._partition_dim)
            self._layout.observe(
                np.array([interval.low]),
                np.array([interval.high]),
                hits=visit_mask.astype(np.int64),
                pruned=(~visit_mask).astype(np.int64),
                examined=examined_by,
            )
        return merged

    def batch_range_query(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Global row ids for every query of a batch (scatter-gather).

        The whole batch is translated and planned once over its columnar
        bound matrices; each shard receives a single batched call covering
        exactly the queries that survive its bounding-box pruning, those
        calls run on the worker pool (serially when ``workers=1``), and
        the per-shard flat results are gathered with the fused-key merge.
        Results are positionally aligned and identical to
        ``[range_query(q) for q in queries]`` — and to the same batch on
        an unsharded COAX index.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return []
        self._check_open()
        with self._maintenance_guard():
            results, _ = self._batch_range_query_locked(queries, n_queries)
            return results

    def batch_range_query_attributed(
        self, queries: Sequence[Rectangle]
    ) -> Tuple[List[np.ndarray], List[QueryStats]]:
        """Batch results plus one :class:`QueryStats` per query.

        Same execution (and identical results/engine counters) as
        :meth:`batch_range_query`, but the per-shard counter deltas are
        split back onto the individual queries so a serving layer can
        report honest per-query numbers instead of batch-global ones:

        * ``rows_matched``, ``shards_pruned`` and ``queries`` (1 for a
          live query, 0 for a statically empty one) are **exact** — the
          flat result stream and the per-query visibility masks identify
          them precisely.
        * ``rows_examined`` / ``cells_visited`` / ``nodes_visited`` are
          **attributed**: the batch kernels account those once per shard
          sub-batch, so each shard's delta is divided evenly (largest-
          remainder, see :func:`repro.core.results.split_counter_evenly`)
          across exactly the queries dispatched to that shard.  Summing
          the per-query stats always reproduces the batch-global counters
          bit-for-bit.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return [], []
        self._check_open()
        with self._maintenance_guard():
            return self._batch_range_query_locked(queries, n_queries, attribute=True)

    def _batch_range_query_locked(
        self, queries: List[Rectangle], n_queries: int, attribute: bool = False
    ) -> Tuple[List[np.ndarray], List[QueryStats]]:
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        n_live = int(live.sum())
        if n_live == 0:
            empties = [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
            return empties, [QueryStats() for _ in range(n_queries)] if attribute else []
        translated_bounds, no_inlier = translate_bounds_batch(
            bounds, n_queries, self._groups
        )

        # Per-shard visibility masks: the batch form of the scalar pruning
        # rule, evaluated as whole-batch array ops.  Each task carries the
        # shard's pre-sliced bound matrices and planner flags, so the
        # shard executes without re-deriving any of them.
        tasks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        pruned_per_query = np.zeros(n_queries, dtype=np.int64)
        hits_by = np.zeros(len(self._shards), dtype=np.int64)
        pruned_by = np.zeros(len(self._shards), dtype=np.int64)
        for shard_no, shard in enumerate(self._shards):
            use_primary, use_outlier = plan_query_flags(
                bounds,
                translated_bounds,
                no_inlier,
                n_queries,
                primary_box=shard.primary_box,
                outlier_box=shard.outlier_box,
            )
            visible = use_primary | use_outlier
            if shard.n_pending:
                visible |= live & batch_overlaps_box(bounds, n_queries, shard.delta.box)
            pruned_per_query += live & ~visible
            pruned_by[shard_no] = int(np.count_nonzero(live & ~visible))
            slots = np.flatnonzero(visible)
            hits_by[shard_no] = len(slots)
            if len(slots):
                tasks.append((shard_no, slots, use_primary[slots], use_outlier[slots]))
        shards_pruned = int(pruned_per_query.sum())

        def run_shard(
            task: Tuple[int, np.ndarray, np.ndarray, np.ndarray],
        ) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
            shard_no, slots, use_primary, use_outlier = task
            shard = self._shards[shard_no]
            sub_bounds = {
                dim: (lows[slots], highs[slots])
                for dim, (lows, highs) in bounds.items()
            }
            sub_translated = {
                dim: (lows[slots], highs[slots])
                for dim, (lows, highs) in translated_bounds.items()
            }
            # Snapshot and delta both inside the shard lock (see
            # range_query): concurrent readers must not double-count each
            # other's per-shard work.
            with shard.write_lock:
                before = _stats_snapshot(shard.stats)
                local_ids, sub_qids = shard.batch_scatter_flat(
                    queries,
                    slots,
                    sub_bounds,
                    sub_translated,
                    use_primary,
                    use_outlier,
                    len(slots),
                )
                global_ids = self._global_of[shard_no][local_ids]
                delta = _stats_delta(before, shard.stats)
            return global_ids, slots[sub_qids], delta

        if (
            self._config.executor == "process"
            and self._config.workers > 1
            and len(tasks) > 1
        ):
            scattered = self._scatter_processes(
                queries, bounds, translated_bounds, tasks
            )
        else:
            scattered = self._map_shards(run_shard, tasks)

        gathered = QueryStats()
        id_parts: List[np.ndarray] = []
        qid_parts: List[np.ndarray] = []
        for global_ids, qids, delta in scattered:
            gathered.merge(delta)
            if len(global_ids):
                id_parts.append(global_ids)
                qid_parts.append(qids)
        if id_parts:
            results = merge_flat_row_ids(
                np.concatenate(id_parts), np.concatenate(qid_parts), n_queries
            )
        else:
            results = [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
        total_matched = int(sum(len(result) for result in results))
        with self._stats_lock:
            self.stats.record_batch(
                n_live,
                rows_examined=gathered.rows_examined,
                rows_matched=total_matched,
                cells_visited=gathered.cells_visited,
                nodes_visited=gathered.nodes_visited,
                shards_pruned=shards_pruned,
            )
        if self._layout is not None:
            # Outside the stats lock: the monitor has its own leaf lock.
            # Sketch the *translated* partition-dim intervals when the
            # translator produced any (those drive primary-box pruning),
            # the original bounds otherwise.
            examined_by = np.zeros(len(self._shards), dtype=np.int64)
            for task, (_, _, delta) in zip(tasks, scattered):
                examined_by[task[0]] = delta.rows_examined
            if self._partition_dim in translated_bounds:
                part_lows, part_highs = translated_bounds[self._partition_dim]
            elif self._partition_dim in bounds:
                part_lows, part_highs = bounds[self._partition_dim]
            else:
                part_lows = np.full(n_queries, -np.inf)
                part_highs = np.full(n_queries, np.inf)
            self._layout.observe(
                part_lows[live],
                part_highs[live],
                hits=hits_by,
                pruned=pruned_by,
                examined=examined_by,
            )
        per_query: List[QueryStats] = []
        if attribute:
            # Scan/directory counters accumulate per shard sub-batch; each
            # shard's delta is attributed evenly over exactly the queries
            # it was dispatched (tasks and scattered results are
            # positionally aligned), so the per-query stats sum back to
            # the batch-global counters exactly.
            examined = np.zeros(n_queries, dtype=np.int64)
            cells = np.zeros(n_queries, dtype=np.int64)
            nodes = np.zeros(n_queries, dtype=np.int64)
            for task, (_, _, delta) in zip(tasks, scattered):
                slots = task[1]
                examined[slots] += split_counter_evenly(delta.rows_examined, len(slots))
                cells[slots] += split_counter_evenly(delta.cells_visited, len(slots))
                nodes[slots] += split_counter_evenly(delta.nodes_visited, len(slots))
            per_query = [
                QueryStats(
                    queries=int(live[i]),
                    rows_examined=int(examined[i]),
                    rows_matched=len(results[i]),
                    cells_visited=int(cells[i]),
                    nodes_visited=int(nodes[i]),
                    shards_pruned=int(pruned_per_query[i]),
                )
                for i in range(n_queries)
            ]
        return results, per_query

    def _scatter_processes(
        self,
        queries: List[Rectangle],
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        translated_bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        tasks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    ) -> List[Tuple[np.ndarray, np.ndarray, QueryStats]]:
        """Run the surviving shard tasks on the process pool.

        Each payload carries the shard's replica path plus its pre-sliced
        sub-batch (queries, bound matrices, planner flags) — a few KB per
        task; the data itself reaches the worker through the mmap.  Local
        ids are mapped to global ids and sub-batch slots to batch slots
        here in the parent, so the gather below is executor-agnostic.
        Shard ``s`` always runs on worker slot ``s % workers`` (see
        :meth:`_ensure_process_pools`), keeping every worker's replica
        cache small and warm.
        """
        pools = self._ensure_process_pools()
        futures = []
        for shard_no, slots, use_primary, use_outlier in tasks:
            path = self._ensure_spilled(shard_no)
            payload = (
                shard_no,
                path,
                [queries[slot] for slot in slots],
                {
                    dim: (lows[slots], highs[slots])
                    for dim, (lows, highs) in bounds.items()
                },
                {
                    dim: (lows[slots], highs[slots])
                    for dim, (lows, highs) in translated_bounds.items()
                },
                use_primary,
                use_outlier,
            )
            try:
                futures.append(
                    pools[shard_no % len(pools)].submit(_scatter_worker, payload)
                )
            except RuntimeError as exc:
                raise EngineClosedError(
                    "engine worker pool was shut down while dispatching"
                ) from exc
        scattered: List[Tuple[np.ndarray, np.ndarray, QueryStats]] = []
        for task, future in zip(tasks, futures):
            shard_no, slots = task[0], task[1]
            local_ids, sub_qids, counters = future.result()
            delta = _stats_from_counters(counters)
            scattered.append(
                (self._global_of[shard_no][local_ids], slots[sub_qids], delta)
            )
        return scattered

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        """Positions equal global row ids (the engine-wide invariant)."""
        return self.range_query(query)

    # ------------------------------------------------------------------
    # Executors: aggregates, top-k and kNN over the shard fleet
    # ------------------------------------------------------------------
    def aggregate(self, query: Rectangle, spec: Aggregate) -> float:
        """One finalised aggregate value (the singular convenience form)."""
        values, _ = self.batch_aggregate_attributed([query], spec)
        return float(values[0])

    def batch_aggregate(self, queries: Sequence[Rectangle], spec: Aggregate) -> np.ndarray:
        """Finalised aggregate values, one per query."""
        return self.batch_aggregate_partial(queries, spec).finalize(spec)

    def knn(self, point: Mapping[str, float], k: int, *, metric: str = "l2") -> np.ndarray:
        """The k nearest global row ids (see :meth:`knn_partial`)."""
        _, ids = self.knn_partial(point, k, metric=metric)
        return ids

    def topk(self, query: Rectangle, spec: TopK) -> np.ndarray:
        """The top-k global row ids by column (see :meth:`topk_partial`)."""
        _, ids = self.topk_partial(query, spec)
        return ids

    def batch_aggregate_partial(
        self, queries: Sequence[Rectangle], spec: Aggregate
    ) -> AggregatePartial:
        """Per-query accumulators, scatter-gathered as partials not ids.

        The aggregate twin of :meth:`batch_range_query`: the batch is
        translated and planned once, every visible shard folds its
        sub-batch with :meth:`COAXIndex.batch_scatter_aggregate`, and the
        gather merges one :class:`AggregatePartial` slot per query — so
        only O(shards × batch) accumulator floats cross the executor
        boundary, never candidate row ids.  Results are exact (bit-for-bit
        for COUNT/MIN/MAX) against an unsharded index because the shards'
        row subsets are disjoint.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return AggregatePartial.identity(0)
        self._check_open()
        with self._maintenance_guard():
            partial, _ = self._batch_aggregate_locked(queries, n_queries, spec)
        return partial

    def batch_aggregate_attributed(
        self, queries: Sequence[Rectangle], spec: Aggregate
    ) -> Tuple[np.ndarray, List[QueryStats]]:
        """Finalised aggregate values plus one :class:`QueryStats` per query.

        The attribution contract of :meth:`batch_range_query_attributed`,
        extended to the aggregate counters: ``aggregates`` (1 per query)
        and ``rows_matched`` (the query's own accumulator count) are
        exact, the scan counters are split evenly over each shard's
        dispatched queries.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return np.empty(0, dtype=np.float64), []
        self._check_open()
        with self._maintenance_guard():
            partial, per_query = self._batch_aggregate_locked(
                queries, n_queries, spec, attribute=True
            )
        return partial.finalize(spec), per_query

    def _batch_aggregate_locked(
        self,
        queries: List[Rectangle],
        n_queries: int,
        spec: Aggregate,
        attribute: bool = False,
    ) -> Tuple[AggregatePartial, List[QueryStats]]:
        partial = AggregatePartial.identity(n_queries)
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        n_live = int(live.sum())
        if n_live == 0:
            with self._stats_lock:
                self.stats.record_batch(0, aggregates=n_queries)
            per_query = (
                [QueryStats(aggregates=1) for _ in range(n_queries)]
                if attribute
                else []
            )
            return partial, per_query
        translated_bounds, no_inlier = translate_bounds_batch(
            bounds, n_queries, self._groups
        )

        # Identical shard visibility/pruning to the materialising path —
        # the executors differ only in what crosses the gather boundary.
        tasks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        pruned_per_query = np.zeros(n_queries, dtype=np.int64)
        for shard_no, shard in enumerate(self._shards):
            use_primary, use_outlier = plan_query_flags(
                bounds,
                translated_bounds,
                no_inlier,
                n_queries,
                primary_box=shard.primary_box,
                outlier_box=shard.outlier_box,
            )
            visible = use_primary | use_outlier
            if shard.n_pending:
                visible |= live & batch_overlaps_box(bounds, n_queries, shard.delta.box)
            pruned_per_query += live & ~visible
            slots = np.flatnonzero(visible)
            if len(slots):
                tasks.append((shard_no, slots, use_primary[slots], use_outlier[slots]))
        shards_pruned = int(pruned_per_query.sum())

        def run_shard(
            task: Tuple[int, np.ndarray, np.ndarray, np.ndarray],
        ) -> Tuple[AggregatePartial, np.ndarray, QueryStats]:
            shard_no, slots, use_primary, use_outlier = task
            shard = self._shards[shard_no]
            sub_bounds = {
                dim: (lows[slots], highs[slots])
                for dim, (lows, highs) in bounds.items()
            }
            sub_translated = {
                dim: (lows[slots], highs[slots])
                for dim, (lows, highs) in translated_bounds.items()
            }
            with shard.write_lock:
                before = _stats_snapshot(shard.stats)
                sub_partial = shard.batch_scatter_aggregate(
                    queries,
                    slots,
                    sub_bounds,
                    sub_translated,
                    use_primary,
                    use_outlier,
                    len(slots),
                    spec,
                )
                delta = _stats_delta(before, shard.stats)
            return sub_partial, slots, delta

        if (
            self._config.executor == "process"
            and self._config.workers > 1
            and len(tasks) > 1
        ):
            scattered = self._aggregate_processes(
                queries, bounds, translated_bounds, tasks, spec
            )
        else:
            scattered = self._map_shards(run_shard, tasks)

        gathered = QueryStats()
        for sub_partial, slots, delta in scattered:
            gathered.merge(delta)
            partial.merge_at(slots, sub_partial)
        with self._stats_lock:
            self.stats.record_batch(
                n_live,
                rows_examined=gathered.rows_examined,
                rows_matched=int(partial.count.sum()),
                cells_visited=gathered.cells_visited,
                nodes_visited=gathered.nodes_visited,
                shards_pruned=shards_pruned,
                aggregates=n_queries,
            )
        per_query: List[QueryStats] = []
        if attribute:
            examined = np.zeros(n_queries, dtype=np.int64)
            cells = np.zeros(n_queries, dtype=np.int64)
            nodes = np.zeros(n_queries, dtype=np.int64)
            for task, (_, _, delta) in zip(tasks, scattered):
                slots = task[1]
                examined[slots] += split_counter_evenly(delta.rows_examined, len(slots))
                cells[slots] += split_counter_evenly(delta.cells_visited, len(slots))
                nodes[slots] += split_counter_evenly(delta.nodes_visited, len(slots))
            per_query = [
                QueryStats(
                    queries=int(live[i]),
                    rows_examined=int(examined[i]),
                    rows_matched=int(partial.count[i]),
                    cells_visited=int(cells[i]),
                    nodes_visited=int(nodes[i]),
                    shards_pruned=int(pruned_per_query[i]),
                    aggregates=1,
                )
                for i in range(n_queries)
            ]
        return partial, per_query

    def _aggregate_processes(
        self,
        queries: List[Rectangle],
        bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        translated_bounds: Dict[str, Tuple[np.ndarray, np.ndarray]],
        tasks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
        spec: Aggregate,
    ) -> List[Tuple[AggregatePartial, np.ndarray, QueryStats]]:
        """Run the surviving aggregate tasks on the process pool.

        Payloads mirror :meth:`_scatter_processes`; results ship back as
        :meth:`AggregatePartial.state` arrays — four floats per sub-query
        regardless of how many rows the fold covered.
        """
        pools = self._ensure_process_pools()
        futures = []
        for shard_no, slots, use_primary, use_outlier in tasks:
            path = self._ensure_spilled(shard_no)
            payload = (
                shard_no,
                path,
                [queries[slot] for slot in slots],
                {
                    dim: (lows[slots], highs[slots])
                    for dim, (lows, highs) in bounds.items()
                },
                {
                    dim: (lows[slots], highs[slots])
                    for dim, (lows, highs) in translated_bounds.items()
                },
                use_primary,
                use_outlier,
                spec,
            )
            try:
                futures.append(
                    pools[shard_no % len(pools)].submit(_aggregate_worker, payload)
                )
            except RuntimeError as exc:
                raise EngineClosedError(
                    "engine worker pool was shut down while dispatching"
                ) from exc
        scattered: List[Tuple[AggregatePartial, np.ndarray, QueryStats]] = []
        for task, future in zip(tasks, futures):
            slots = task[1]
            state, counters = future.result()
            scattered.append(
                (AggregatePartial.from_state(state), slots, _stats_from_counters(counters))
            )
        return scattered

    def knn_partial(
        self, point: Mapping[str, float], k: int, *, metric: str = "l2"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """k nearest global ids: every shard's candidates, one exact merge."""
        self._check_open()
        with self._maintenance_guard():
            keys, ids, _ = self._knn_locked(dict(point), k, metric)
        return keys, ids

    def knn_attributed(
        self, point: Mapping[str, float], k: int, *, metric: str = "l2"
    ) -> Tuple[np.ndarray, QueryStats]:
        """kNN result ids plus the query's own :class:`QueryStats`."""
        self._check_open()
        with self._maintenance_guard():
            _, ids, record = self._knn_locked(dict(point), k, metric)
        return ids, record

    def _knn_locked(
        self, point: Dict[str, float], k: int, metric: str
    ) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
        # kNN has no rectangle to prune shards with — a distance bound
        # tight enough to skip a shard would need the very candidates the
        # shard is asked for — so every shard runs its ring search and the
        # gather keeps the k best (global-id tie-break; local id order
        # equals global id order within a shard, so per-shard truncation
        # never drops a tie winner).
        gathered = QueryStats()
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        for shard_no, shard in enumerate(self._shards):
            with shard.write_lock:
                before = _stats_snapshot(shard.stats)
                keys, local_ids = shard.knn_partial(point, k, metric=metric)
                parts.append((keys, self._global_of[shard_no][local_ids]))
                gathered.merge(_stats_delta(before, shard.stats))
        keys, ids = merge_topk(parts, k)
        record = QueryStats(
            queries=1,
            rows_examined=gathered.rows_examined,
            rows_matched=len(ids),
            cells_visited=gathered.cells_visited,
            nodes_visited=gathered.nodes_visited,
            knn_queries=1,
            rings_expanded=gathered.rings_expanded,
        )
        with self._stats_lock:
            self.stats.merge(record)
        return keys, ids, record

    def topk_partial(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, np.ndarray]:
        """By-column top-k within a rectangle, with shard pruning."""
        self._check_open()
        with self._maintenance_guard():
            keys, ids, _ = self._topk_locked(query, spec)
        return keys, ids

    def topk_attributed(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, QueryStats]:
        """Top-k result ids plus the query's own :class:`QueryStats`."""
        self._check_open()
        with self._maintenance_guard():
            _, ids, record = self._topk_locked(query, spec)
        return ids, record

    def _topk_locked(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
        empty = (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64))
        if query.is_empty:
            record = QueryStats(queries=1, knn_queries=1)
            with self._stats_lock:
                self.stats.merge(record)
            return empty[0], empty[1], record
        translated = translate_query(query, self._groups)
        visits = self._scalar_visit_mask(query, translated)
        gathered = QueryStats()
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        for shard_no, visible in enumerate(visits):
            if not visible:
                continue
            shard = self._shards[shard_no]
            with shard.write_lock:
                before = _stats_snapshot(shard.stats)
                keys, local_ids = shard.topk_partial(query, spec)
                parts.append((keys, self._global_of[shard_no][local_ids]))
                gathered.merge(_stats_delta(before, shard.stats))
        keys, ids = merge_topk(parts, spec.k, largest=spec.largest)
        record = QueryStats(
            queries=1,
            rows_examined=gathered.rows_examined,
            rows_matched=len(ids),
            cells_visited=gathered.cells_visited,
            nodes_visited=gathered.nodes_visited,
            shards_pruned=len(self._shards) - sum(visits),
            knn_queries=1,
        )
        with self._stats_lock:
            self.stats.merge(record)
        return keys, ids, record

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, record: Mapping[str, float]) -> int:
        """Insert one record, returning its assigned global row id."""
        return int(self.insert_batch([record])[0])

    def insert_batch(self, batch: BatchLike) -> np.ndarray:
        """Insert a batch, routing every row to its shard; returns global ids.

        Same accepted forms as :meth:`COAXIndex.insert_batch`.  The batch
        is split by the partitioner and lands in each shard's delta store
        with one call per touched shard; a shard whose auto-compaction
        trigger fires compacts independently (local ids survive, so the
        global mapping is untouched).  Mutation entry point: holds the
        engine lock, and each shard's lock around the shard append plus
        its mapping extension.
        """
        with self._write_lock:
            self._check_open()
            columns = coerce_batch(batch, tuple(self._table.schema))
            n_new = len(next(iter(columns.values()))) if columns else 0
            global_ids = self._next_global_id + np.arange(n_new, dtype=np.int64)
            if n_new == 0:
                return global_ids
            assignment = self._route(columns, global_ids)
            local_ids = np.empty(n_new, dtype=np.int64)
            masks = self._new_mask_gather(n_new)
            for shard_no in np.unique(assignment):
                routed = assignment == shard_no
                shard = self._shards[shard_no]
                sub_columns = {name: array[routed] for name, array in columns.items()}
                # The shard append and the mapping extension must be one
                # atomic step for concurrent readers holding this shard's
                # lock: a pending row visible to a scatter worker always
                # has its global id resolvable.
                with shard.write_lock:
                    local_ids[routed] = shard.insert_batch(sub_columns)
                    self._gather_shard_masks(shard, routed, masks, sub_columns)
                    self._global_of[shard_no] = np.concatenate(
                        [self._global_of[shard_no], global_ids[routed]]
                    )
            self._shard_of = np.concatenate([self._shard_of, assignment])
            self._local_of = np.concatenate([self._local_of, local_ids])
            self._next_global_id += n_new
            self._note_shard_mutation(np.unique(assignment))
            self._observe_columns(columns, masks)
            return global_ids

    def _new_mask_gather(self, n_new: int) -> Optional[Dict[str, np.ndarray]]:
        """Batch-order per-model mask buffers for the shared monitors.

        ``None`` when maintenance is disabled — nothing is gathered then.
        """
        if self._maintenance is None:
            return None
        return {
            name: np.empty(n_new, dtype=bool)
            for name in self._maintenance.model_names
        }

    def _gather_shard_masks(
        self,
        shard: COAXIndex,
        routed: np.ndarray,
        masks: Optional[Dict[str, np.ndarray]],
        sub_columns: Mapping[str, np.ndarray],
    ) -> None:
        """Scatter a shard's freshly recorded routing masks into batch order.

        The shard's delta store just appended this sub-batch at its tail
        and recorded one margin mask per model for routing; slicing those
        buffers back means the shared monitors never re-evaluate a model
        on the write path — same as the flat index's
        ``_observe_pending_tail``.  The one exception: when the shard's
        auto-compaction fired inside the write and drained its buffer,
        the masks are re-derived for this sub-batch only.
        """
        if masks is None:
            return
        n_routed = int(np.count_nonzero(routed))
        if n_routed == 0:
            return
        if shard.delta.n_pending >= n_routed:
            for name, buffer in masks.items():
                buffer[routed] = shard.delta.model_mask(name)[-n_routed:]
        else:
            computed = per_model_inlier_masks(self._groups, sub_columns)
            for name, buffer in masks.items():
                buffer[routed] = computed[name]

    def _observe_columns(
        self,
        columns: Mapping[str, np.ndarray],
        masks: Optional[Dict[str, np.ndarray]],
    ) -> None:
        """Stream a whole written batch into the shared drift monitors."""
        if self._maintenance is None or masks is None:
            return
        self._maintenance.observe_batch(columns, masks)

    # ------------------------------------------------------------------
    # Deletes and in-place updates
    # ------------------------------------------------------------------
    def delete(self, row_id: int) -> bool:
        """Delete one record by global row id; ``True`` if it was live."""
        return self.delete_batch(np.array([row_id], dtype=np.int64)) == 1

    def delete_batch(self, row_ids: np.ndarray) -> int:
        """Delete records by global row id; returns how many were live.

        Ids are grouped per shard through the mapping and each shard
        receives one local batch delete (idempotent, unknown ids skipped,
        per-shard auto-compaction may fire).  Mutation entry point: holds
        the engine lock for the whole batch.
        """
        with self._write_lock:
            self._check_open()
            row_ids = np.unique(np.asarray(row_ids, dtype=np.int64))
            if len(row_ids) == 0:
                return 0
            known = row_ids[(row_ids >= 0) & (row_ids < self._next_global_id)]
            if len(known) == 0:
                return 0
            deleted = 0
            shard_ids = self._shard_of[known]
            for shard_no in np.unique(shard_ids):
                local = self._local_of[known[shard_ids == shard_no]]
                deleted += self._shards[shard_no].delete_batch(local)
            self._note_shard_mutation(np.unique(shard_ids))
            return int(deleted)

    def delete_rows(self, row_ids: np.ndarray, *, assume_unique: bool = False) -> int:
        """Generic tombstone entry point; routes through the full engine
        delete so the facade and the shards can never diverge."""
        del assume_unique
        return self.delete_batch(row_ids)

    def delete_where(self, query: Rectangle) -> np.ndarray:
        """Delete every record matching ``query``; returns their global ids.

        Mutation entry point: the engine lock spans the query *and* the
        delete, so no concurrent mutation can slip between finding the
        matches and tombstoning them.
        """
        with self._write_lock:
            matches = self.range_query(query)
            self.delete_batch(matches)
            return matches

    def update_batch(self, row_ids: np.ndarray, batch: BatchLike) -> np.ndarray:
        """Replace live records in place, preserving their global row ids.

        Semantics of :meth:`COAXIndex.update_batch`: unknown or deleted
        ids raise ``KeyError`` *before anything is applied* (liveness is
        checked across every touched shard first), duplicates raise
        ``ValueError``.  Rows stay in their original shard even when a
        range-partitioned update moves the partition key — the shard's
        bounding boxes grow to cover the new values, so pruning stays
        correct without cross-shard migration.
        """
        with self._write_lock:
            self._check_open()
            columns = coerce_batch(batch, tuple(self._table.schema))
            row_ids = np.asarray(row_ids, dtype=np.int64)
            n_new = len(next(iter(columns.values()))) if columns else 0
            if n_new != len(row_ids):
                raise ValueError(
                    f"update batch has {n_new} rows for {len(row_ids)} row ids"
                )
            if n_new == 0:
                return row_ids
            if len(np.unique(row_ids)) != len(row_ids):
                raise ValueError("update batch contains duplicate row ids")
            known = (row_ids >= 0) & (row_ids < self._next_global_id)
            if not known.all():
                missing = row_ids[~known]
                raise KeyError(
                    f"cannot update unknown or deleted row ids: {missing.tolist()[:10]}"
                )
            shard_ids = self._shard_of[row_ids]
            local_ids = self._local_of[row_ids]
            touched = np.unique(shard_ids)
            live = np.zeros(n_new, dtype=bool)
            for shard_no in touched:
                routed = shard_ids == shard_no
                live[routed] = self._shards[shard_no]._live_ids_mask(local_ids[routed])
            if not live.all():
                missing = row_ids[~live]
                raise KeyError(
                    f"cannot update unknown or deleted row ids: {missing.tolist()[:10]}"
                )
            masks = self._new_mask_gather(n_new)
            for shard_no in touched:
                routed = shard_ids == shard_no
                sub_columns = {name: array[routed] for name, array in columns.items()}
                shard = self._shards[shard_no]
                shard.update_batch(local_ids[routed], sub_columns)
                self._gather_shard_masks(shard, routed, masks, sub_columns)
            self._note_shard_mutation(touched)
            self._observe_columns(columns, masks)
            return row_ids

    def _evaluate_layout(self) -> Optional[LayoutProposal]:
        """Cost-model verdict on re-partitioning (caller holds the engine
        lock).  ``None`` keeps the current layout — monitor disabled, too
        few sketched queries, or the predicted win below the threshold."""
        if self._layout is None or self._partition_dim is None:
            return None
        parts: List[np.ndarray] = []
        for shard in self._shards:
            local_live = shard.live_row_ids()
            if len(local_live):
                parts.append(shard.table.column(self._partition_dim)[local_live])
            if shard.n_pending:
                parts.append(shard.delta.column(self._partition_dim))
        if not parts:
            return None
        return self._layout.propose(np.concatenate(parts), self._boundaries)

    def _gather_live_rows(self) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Every live record (main-structure plus pending) with its global
        id, gathered across all shards (caller holds the engine lock).

        Local row id == local table position, so main-structure values are
        plain gathers from the shard tables; pending rows come straight
        from the delta buffers.  A row updated in place is tombstoned in
        the main structure and re-buffered under the same id, so the two
        sources are disjoint and the union is exactly the live set.
        """
        schema = tuple(self._table.schema)
        column_parts: Dict[str, List[np.ndarray]] = {name: [] for name in schema}
        id_parts: List[np.ndarray] = []
        for shard_no, shard in enumerate(self._shards):
            local_live = shard.live_row_ids()
            if len(local_live):
                for name in schema:
                    column_parts[name].append(shard.table.column(name)[local_live])
                id_parts.append(self._global_of[shard_no][local_live])
            if shard.n_pending:
                pending_local = shard.delta.row_ids
                for name in schema:
                    column_parts[name].append(shard.delta.column(name))
                id_parts.append(self._global_of[shard_no][pending_local])
        if not id_parts:
            return (
                {name: np.empty(0, dtype=np.float64) for name in schema},
                np.empty(0, dtype=np.int64),
            )
        return (
            {name: np.concatenate(parts) for name, parts in column_parts.items()},
            np.concatenate(id_parts),
        )

    def _rebuild_layout(self, proposal: LayoutProposal, groups: List[FDGroup]) -> None:
        """Adopt a layout proposal: gather, re-route, rebuild, swap.

        Caller holds the engine lock (readers are excluded through
        :meth:`_maintenance_guard`, which always guards when a layout
        monitor exists).  Phase 1 is pure — live rows are gathered and
        fresh shards built without mutating anything, so a build failure
        leaves the engine on the old layout, fully consistent.  Phase 2
        swaps shard list, boundaries and the global-id mapping and resizes
        the spill bookkeeping; global ids survive verbatim (dead ids map
        to the ``-1`` local sentinel no shard ever matches), so results
        are bit-identical across the re-layout.
        """
        columns, global_ids = self._gather_live_rows()
        boundaries = np.asarray(proposal.boundaries, dtype=np.float64)
        n_new = proposal.n_shards
        values = columns[self._partition_dim]
        assignment = np.searchsorted(boundaries, values, side="right")
        member_rows: List[np.ndarray] = []
        shard_globals: List[np.ndarray] = []
        for shard_no in range(n_new):
            members = np.flatnonzero(assignment == shard_no)
            # Ascending global ids inside each shard: deterministic local
            # numbering regardless of gather order.
            members = members[np.argsort(global_ids[members], kind="stable")]
            member_rows.append(members)
            shard_globals.append(global_ids[members].astype(np.int64))

        def build(members: np.ndarray) -> COAXIndex:
            return COAXIndex(
                Table({name: array[members] for name, array in columns.items()}),
                config=self._shard_config,
                groups=groups,
                dimensions=self._dimensions,
            )

        fresh = self._map_shards(build, member_rows)

        # Phase 2: swaps and bookkeeping only, nothing below can fail.
        self._shards = fresh
        self._boundaries = boundaries
        self._global_of = shard_globals
        total = self._next_global_id
        self._shard_of = np.zeros(total, dtype=np.int64)
        # Dead ids resolve to local -1: the clipped-searchsorted liveness
        # and position lookups of the shards can never match it.
        self._local_of = np.full(total, -1, dtype=np.int64)
        for shard_no, ids in enumerate(shard_globals):
            self._shard_of[ids] = shard_no
            self._local_of[ids] = np.arange(len(ids), dtype=np.int64)
        if n_new != self._config.n_shards:
            self._config = replace(self._config, n_shards=n_new)
        with self._spill_lock:
            # Strictly increasing generations across the re-layout: a
            # reused (shard, generation) pair would alias an old spill
            # path and worker replica caches would serve stale bytes.
            base = (max(self._generations) + 1) if self._generations else 1
            for spilled in self._spilled:
                if spilled is not None and os.path.exists(spilled[1]):
                    shutil.rmtree(spilled[1], ignore_errors=True)
            self._generations = [base] * n_new
            self._spilled = [None] * n_new

    def compact(self, shard: Optional[int] = None) -> "ShardedCOAX":
        """Fold delta stores and reclaim tombstones — per shard.

        With ``shard`` given, exactly that shard compacts (the scheduling
        primitive for amortised maintenance); otherwise every shard
        compacts, in parallel on the worker pool when ``workers > 1``.
        Stop-the-world only ever happens per shard: queries against other
        shards proceed concurrently (each compaction holds only its own
        shard's lock).  Returns ``self``.

        Drift-aware model refresh happens only on a *full* compaction: the
        shared monitors decide once, and the refreshed groups are pushed
        to every shard before the per-shard folds, so shards can never
        disagree about the models.  A single-shard compact deliberately
        never refreshes — it would have to touch every other shard too.

        A refit is applied transactionally: every shard's re-partitioned
        replacement is *built* first without mutating anything (in
        parallel on the pool), and only when all builds succeeded are the
        shards swapped and the engine's groups committed — a failure
        during the build phase leaves the whole engine on the old models,
        mutually consistent.  Queries exclude the refresh window through
        :meth:`_maintenance_guard`.

        Workload-adaptive layout composes here too: the full compaction
        first asks the shared drift monitors for a model verdict, then
        the layout monitor for a boundary verdict.  When a re-layout is
        accepted, ONE gather-and-rebuild serves both tiers — the fresh
        shards are built directly with the refreshed groups (whether the
        model tier asked for a refit or only wider margins; see
        ``MaintenanceOutcome.requires_rebuild``), pending rows are folded
        in and tombstones reclaimed by construction, so the per-shard
        folds below are skipped.  When the layout verdict is a veto, the
        model tiers apply exactly as before.
        """
        with self._write_lock:
            self._check_open()
            if shard is not None:
                self._shards[shard].compact()
                self._note_shard_mutation(shard)
                return self
            outcome = None
            refreshed = False
            if self._maintenance is not None:
                outcome = self._maintenance.refresh(self._groups)
                refreshed = outcome.action != REUSE
            proposal = self._evaluate_layout()
            if proposal is not None:
                # One rebuild serves the model and the layout tier: route
                # every live row by the proposed boundaries and build the
                # new shards with the (possibly refreshed) groups.
                new_groups = list(outcome.groups) if refreshed else list(self._groups)
                self._rebuild_layout(proposal, new_groups)
                self._groups = new_groups
                if refreshed:
                    self._maintenance.commit(outcome)
                self._layout.note_adopted(proposal)
            elif outcome is not None and outcome.requires_rebuild:
                new_groups = list(outcome.groups)
                # Phase 1: pure builds, nothing mutated anywhere — a
                # failure leaves engine, shards and monitors on the
                # old generation, mutually consistent.
                prepared = self._map_shards(
                    lambda s: s._build_reclaimed(new_groups), self._shards
                )
                # Phase 2: commit — swaps and bookkeeping only.
                for shard_index, fresh in zip(self._shards, prepared):
                    with shard_index.write_lock:
                        shard_index._swap_reclaimed(fresh)
                        shard_index.delta.clear()
                self._groups = new_groups
                self._maintenance.commit(outcome)
            elif refreshed:
                # Margins only widened: adoption is structure-free and
                # safe per shard (see COAXIndex.apply_refresh).
                self._groups = list(outcome.groups)
                self._map_shards(
                    lambda s: s.apply_refresh(self._groups),
                    self._shards,
                )
                self._maintenance.commit(outcome)
            if proposal is None:
                self._map_shards(lambda s: s.compact(), self._shards)
            self._note_shard_mutation(np.arange(len(self._shards)))
            if refreshed or proposal is not None:
                # The refreshed band's baseline follows the inlier
                # fractions the rebuild/folds just recomputed — the
                # engine-level analogue of the flat index's post-fold
                # rebind, so both configurations damp the reactive
                # triggers identically.
                if self._maintenance is not None:
                    self._maintenance.rebind(
                        self._groups, self._aggregate_inlier_fractions()
                    )
            return self

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Shard directories plus the global-id mapping arrays."""
        return int(sum(self.memory_breakdown().values()))

    def data_bytes(self) -> int:
        """Bytes of record data across the shard-local tables."""
        return int(sum(shard.data_bytes() for shard in self._shards))

    def memory_breakdown(self) -> Dict[str, int]:
        """Directory bytes per component (shards plus the mapping)."""
        breakdown = {
            f"shard{shard_no}": shard.directory_bytes()
            for shard_no, shard in enumerate(self._shards)
        }
        breakdown["mapping"] = (
            self._shard_of.nbytes
            + self._local_of.nbytes
            + int(sum(array.nbytes for array in self._global_of))
        )
        return breakdown

    # ------------------------------------------------------------------
    # Persistence support (format v4; see repro.io.persistence)
    # ------------------------------------------------------------------
    @classmethod
    def _from_shards(
        cls,
        shards: Sequence[COAXIndex],
        *,
        config: EngineConfig,
        groups: Sequence[FDGroup],
        dimensions: Sequence[str],
        global_of: Sequence[np.ndarray],
        next_global_id: int,
        boundaries: np.ndarray,
        partition_dimension: Optional[str],
    ) -> "ShardedCOAX":
        """Assemble an engine from restored shards plus their mapping.

        Used by the v4 archive loader and by :meth:`from_index`; validates
        that the mapping covers every global id exactly once before
        trusting it.
        """
        shards = list(shards)
        if len(shards) != config.n_shards:
            raise ValueError(
                f"engine config expects {config.n_shards} shards, got {len(shards)}"
            )
        global_of = [np.asarray(ids, dtype=np.int64) for ids in global_of]
        total = int(sum(len(ids) for ids in global_of))
        if total != next_global_id:
            raise ValueError(
                f"shard mapping covers {total} global ids, expected {next_global_id}"
            )
        self = cls.__new__(cls)
        self._config = config
        # The facade table only carries the schema for insert coercion;
        # record data lives in the shard-local tables.
        self._table = shards[0].table if shards else None
        self._dimensions = tuple(dimensions)
        self.stats = QueryStats()
        self._write_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._executor = None
        self._process_pools = None
        self._spill_lock = threading.Lock()
        self._spill_dir = None
        self._generations = [0] * config.n_shards
        self._spilled = [None] * config.n_shards
        self._groups = list(groups)
        self._partition_dim = partition_dimension
        self._boundaries = np.asarray(boundaries, dtype=np.float64)
        self._layout = None
        if config.layout.enabled and config.partitioning == "range":
            self._layout = LayoutMonitor(config.layout, config.n_shards)
        self._shards = shards
        self._shard_config = shards[0].config
        # Drift maintenance is strictly engine-owned: a shard refreshing
        # its own models would diverge from the groups the engine
        # translates batch queries with, silently losing rows.  A wrapped
        # flat index's manager is therefore *promoted* to the engine (its
        # monitor state survives) and stripped from the shard.
        self._maintenance = None
        if config.coax.maintenance.enabled and self._groups:
            promoted = next(
                (s.maintenance for s in shards if s.maintenance is not None),
                None,
            )
            if promoted is not None:
                for s in shards:
                    s._maintenance = None
                self._maintenance = promoted
            else:
                self._maintenance = MaintenanceManager(
                    self._groups,
                    config.coax.maintenance,
                    self._aggregate_inlier_fractions(),
                )
        self._shard_of = np.empty(next_global_id, dtype=np.int64)
        self._local_of = np.empty(next_global_id, dtype=np.int64)
        seen = np.zeros(next_global_id, dtype=bool)
        for shard_no, ids in enumerate(global_of):
            if seen[ids].any():
                raise ValueError("shard mapping assigns some global id twice")
            seen[ids] = True
            self._shard_of[ids] = shard_no
            self._local_of[ids] = np.arange(len(ids), dtype=np.int64)
        self._global_of = global_of
        self._next_global_id = int(next_global_id)
        return self

    @classmethod
    def from_index(
        cls, index: COAXIndex, *, workers: int = 1, executor: str = "thread"
    ) -> "ShardedCOAX":
        """Wrap an existing (e.g. legacy-archive) COAX index as one shard.

        The shard's local ids are the global ids, so the mapping is the
        identity; this is how format v1–v3 archives load into the engine.
        """
        config = EngineConfig(
            n_shards=1,
            partitioning="hash",
            workers=workers,
            executor=executor,
            coax=index.config,
        )
        return cls._from_shards(
            [index],
            config=config,
            groups=list(index.groups),
            dimensions=index.dimensions,
            global_of=[np.arange(index.next_row_id, dtype=np.int64)],
            next_global_id=index.next_row_id,
            boundaries=np.empty(0, dtype=np.float64),
            partition_dimension=None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCOAX(n_shards={self.n_shards}, workers={self.workers}, "
            f"partitioning={self._config.partitioning!r}, n_rows={self.n_rows})"
        )
