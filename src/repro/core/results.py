"""Query results and result merging.

COAX answers a query by running it (translated) against the primary index
and (untranslated) against the outlier index, then merging the two result
sets (Figure 1, "Merged output").  Because both sub-indexes report original
row ids and cover disjoint row sets, the merge is a simple concatenation;
:func:`merge_row_ids` still de-duplicates defensively so the invariant is
enforced rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "QueryResult",
    "merge_row_ids",
    "merge_flat_row_ids",
    "merge_row_ids_batch",
    "split_counter_evenly",
]


def split_counter_evenly(total: int, n_parts: int) -> np.ndarray:
    """Split an integer work counter into ``n_parts`` shares, sum-preserving.

    The attribution primitive of the flat batch path: the batch kernels
    account their work (rows examined, cells visited) once per sub-batch,
    so a per-query breakdown has to *divide* those deltas.  The split is
    even with largest-remainder rounding — ``out.sum() == total`` exactly,
    so per-query stats aggregated back always reproduce the batch-global
    counters instead of drifting by rounding.
    """
    if n_parts <= 0:
        return np.empty(0, dtype=np.int64)
    base, remainder = divmod(int(total), n_parts)
    out = np.full(n_parts, base, dtype=np.int64)
    out[:remainder] += 1
    return out


def merge_row_ids(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Sorted union of several row-id arrays."""
    non_empty = [np.asarray(part, dtype=np.int64) for part in parts if len(part)]
    if not non_empty:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(non_empty))


def merge_flat_row_ids(
    ids: np.ndarray, qids: np.ndarray, n_queries: int
) -> List[np.ndarray]:
    """Per-query sorted unions of a flat ``(row id, query id)`` stream.

    ``ids[j]`` is a result row id belonging to query ``qids[j]`` (in any
    order, with duplicates).  Output ``i`` is the sorted de-duplicated row
    ids of query ``i`` — identical to :func:`merge_row_ids` over that
    query's fragments — computed for the whole batch with *one* sort: row
    and query id are fused into a single integer key where the value ranges
    allow it (one ``np.sort``, no indirection), falling back to a stable
    ``lexsort`` otherwise.
    """
    empty = np.empty(0, dtype=np.int64)
    total = len(ids)
    if total == 0:
        return [empty for _ in range(n_queries)]
    ids = np.asarray(ids, dtype=np.int64)
    qids = np.asarray(qids, dtype=np.int64)
    id_span = int(ids.max()) + 1
    if id_span * n_queries < np.iinfo(np.int64).max // 2 and int(ids.min()) >= 0:
        keys = np.sort(qids * id_span + ids)
        keep = np.ones(total, dtype=bool)
        keep[1:] = keys[1:] != keys[:-1]
        keys = keys[keep]
        out_ids = keys % id_span
        out_qids = keys // id_span
    else:  # pragma: no cover - needs >2^62 fused key space
        order = np.lexsort((ids, qids))
        ids = ids[order]
        qids = qids[order]
        keep = np.ones(total, dtype=bool)
        keep[1:] = (ids[1:] != ids[:-1]) | (qids[1:] != qids[:-1])
        out_ids = ids[keep]
        out_qids = qids[keep]
    counts = np.bincount(out_qids, minlength=n_queries)
    return np.split(out_ids, np.cumsum(counts)[:-1])


def merge_row_ids_batch(parts_per_query: Sequence[Sequence[np.ndarray]]) -> List[np.ndarray]:
    """Per-query sorted unions for a whole batch in one vectorized pass.

    ``parts_per_query[i]`` holds the result fragments (primary, outlier,
    pending, ...) of query ``i``.  Instead of one ``np.unique`` dispatch per
    query, all fragments are flattened into one ``(row id, query id)``
    stream and merged by :func:`merge_flat_row_ids` with a single sort;
    each output is identical to ``merge_row_ids`` of that query's
    fragments.
    """
    n_queries = len(parts_per_query)
    lengths = np.array(
        [sum(len(part) for part in parts) for parts in parts_per_query], dtype=np.int64
    )
    if int(lengths.sum()) == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
    ids = np.concatenate(
        [np.asarray(part, dtype=np.int64) for parts in parts_per_query for part in parts]
    )
    qids = np.repeat(np.arange(n_queries, dtype=np.int64), lengths)
    return merge_flat_row_ids(ids, qids, n_queries)


@dataclass
class QueryResult:
    """Merged result of one COAX query with per-sub-index attribution."""

    row_ids: np.ndarray
    primary_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    outlier_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    pending_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Which sub-indexes the planner decided to touch.
    indexes_used: Dict[str, bool] = field(default_factory=dict)

    @property
    def n_results(self) -> int:
        """Number of matching records."""
        return int(len(self.row_ids))

    @property
    def primary_share(self) -> float:
        """Fraction of results that came from the primary index."""
        return len(self.primary_row_ids) / self.n_results if self.n_results else 0.0
