"""Query results and result merging.

COAX answers a query by running it (translated) against the primary index
and (untranslated) against the outlier index, then merging the two result
sets (Figure 1, "Merged output").  Because both sub-indexes report original
row ids and cover disjoint row sets, the merge is a simple concatenation;
:func:`merge_row_ids` still de-duplicates defensively so the invariant is
enforced rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

__all__ = ["QueryResult", "merge_row_ids"]


def merge_row_ids(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Sorted union of several row-id arrays."""
    non_empty = [np.asarray(part, dtype=np.int64) for part in parts if len(part)]
    if not non_empty:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(non_empty))


@dataclass
class QueryResult:
    """Merged result of one COAX query with per-sub-index attribution."""

    row_ids: np.ndarray
    primary_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    outlier_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    pending_row_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Which sub-indexes the planner decided to touch.
    indexes_used: Dict[str, bool] = field(default_factory=dict)

    @property
    def n_results(self) -> int:
        """Number of matching records."""
        return int(len(self.row_ids))

    @property
    def primary_share(self) -> float:
        """Fraction of results that came from the primary index."""
        return len(self.primary_row_ids) / self.n_results if self.n_results else 0.0
