"""COAX core: the paper's primary contribution.

The :class:`~repro.core.coax.COAXIndex` ties together the soft-FD learning
of :mod:`repro.fd`, the reduced-dimensionality primary index and the outlier
index of :mod:`repro.indexes`, and the query translation of Section 4.  The
submodules are usable on their own (e.g. the query translator operates on
plain rectangles and FD groups) and are combined by the index class.
"""

from repro.core.config import COAXConfig
from repro.core.delta import DeltaStore
from repro.core.query_translation import translate_query, translated_predictor_interval
from repro.core.partitioner import PartitionResult, partition_rows
from repro.core.planner import QueryPlan, plan_query
from repro.core.results import QueryResult, merge_row_ids
from repro.core.coax import COAXIndex, COAXBuildReport

__all__ = [
    "COAXConfig",
    "DeltaStore",
    "translate_query",
    "translated_predictor_interval",
    "PartitionResult",
    "partition_rows",
    "QueryPlan",
    "plan_query",
    "QueryResult",
    "merge_row_ids",
    "COAXIndex",
    "COAXBuildReport",
]
