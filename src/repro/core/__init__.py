"""COAX core: the paper's primary contribution.

The :class:`~repro.core.coax.COAXIndex` ties together the soft-FD learning
of :mod:`repro.fd`, the reduced-dimensionality primary index and the outlier
index of :mod:`repro.indexes`, and the query translation of Section 4.  The
submodules are usable on their own (e.g. the query translator operates on
plain rectangles and FD groups) and are combined by the index class.  The
``*_batch`` variants are the vectorized whole-batch forms the batch read
path is built from.
"""

from repro.core.config import COAXConfig, EngineConfig, LayoutConfig
from repro.core.delta import DeltaStore
from repro.core.engine import EngineClosedError, ShardedCOAX
from repro.core.query_translation import (
    translate_bounds_batch,
    translate_query,
    translate_query_batch,
    translated_predictor_interval,
)
from repro.core.partitioner import PartitionResult, partition_rows
from repro.core.planner import QueryPlan, plan_queries, plan_query, plan_query_flags
from repro.core.results import (
    QueryResult,
    merge_flat_row_ids,
    merge_row_ids,
    merge_row_ids_batch,
)
from repro.core.coax import COAXIndex, COAXBuildReport

__all__ = [
    "COAXConfig",
    "EngineConfig",
    "LayoutConfig",
    "EngineClosedError",
    "ShardedCOAX",
    "DeltaStore",
    "translate_query",
    "translate_query_batch",
    "translate_bounds_batch",
    "translated_predictor_interval",
    "PartitionResult",
    "partition_rows",
    "QueryPlan",
    "plan_query",
    "plan_queries",
    "plan_query_flags",
    "QueryResult",
    "merge_row_ids",
    "merge_flat_row_ids",
    "merge_row_ids_batch",
    "COAXIndex",
    "COAXBuildReport",
]
