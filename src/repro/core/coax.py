"""The COAX index (the paper's primary contribution).

``COAXIndex`` combines every piece of the pipeline:

1. soft-FD detection and grouping over the build data (Section 5);
2. the inlier/outlier partition with respect to the learned models
   (Algorithm 1);
3. a *primary* index — a quantile grid file with an in-cell sorted
   dimension — built only on the predictor attributes of the inlier
   records (Section 6);
4. an *outlier* index — a conventional multidimensional index over all
   attributes — holding the records that violate some margin;
5. query translation and planning (Section 4), with exact post-filtering so
   results are always identical to a full scan.

Updates (future work in the paper) are supported through a columnar delta
store (:mod:`repro.core.delta`): inserted batches are routed by the learned
models with one vectorised margin check per model, buffered in NumPy append
buffers that query execution scans vectorised, and folded into the main
structures incrementally by :meth:`COAXIndex.compact` — the learned FD
groups, the inlier/outlier routing and the primary grid's quantile
boundaries are all reused, so compaction merges instead of rebuilding.

Deletes and in-place updates complete the CRUD surface in the delta-store
tradition: :meth:`COAXIndex.delete_batch` tombstones main-structure rows in
a bitmap (``O(k log n)`` per batch, immediately visible because every read
path masks tombstoned positions next to its exact post-filter) and removes
pending rows from the delta buffers in place;
:meth:`COAXIndex.update_batch` is delete + reinsert under the *same* row
ids (row ids are table positions, an invariant compaction preserves).  A
compaction that sees tombstones physically reclaims them — partition
fractions and bounding boxes are rebuilt from the survivors — and can be
triggered automatically via ``COAXConfig.auto_compact_tombstone_fraction``.
Row ids are stable for the lifetime of a record: deletion retires an id
forever and compaction never renumbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import COAXConfig
from repro.core.delta import BatchLike, DeltaStore, coerce_batch
from repro.core.partitioner import PartitionResult, partition_rows
from repro.core.planner import (
    QueryPlan,
    bounding_box_of_rows,
    merge_boxes,
    plan_query,
    plan_query_flags,
)
from repro.core.query_translation import (
    dependent_attributes,
    translate_bounds_batch,
    translate_query,
)
from repro.core.results import QueryResult, merge_flat_row_ids, merge_row_ids
from repro.data.executors import Aggregate, AggregatePartial, TopK, merge_topk
from repro.data.predicates import Rectangle, batch_bounds
from repro.data.table import Table
from repro.fd.detection import DetectionConfig, FDCandidate, detect_soft_fds, evaluate_pair
from repro.fd.groups import FDGroup, build_groups
from repro.fd.maintenance import REFIT, REUSE, MaintenanceManager
from repro.indexes.base import IndexBuildError, MultidimensionalIndex, register_index
from repro.indexes.grid_file import SortedCellGridIndex
from repro.indexes.rtree import RTreeIndex
from repro.indexes.uniform_grid import UniformGridIndex
from repro.indexes.full_scan import FullScanIndex

__all__ = ["COAXIndex", "COAXBuildReport", "learn_groups"]


def learn_groups(
    table: Table,
    detection: DetectionConfig,
    dimensions: Sequence[str],
) -> List[FDGroup]:
    """Soft-FD detection and grouping over ``table`` (build-time entry point).

    Shared by :class:`COAXIndex` (when no groups are given) and the sharded
    engine, which learns the groups *once* over the full table and hands the
    same models to every shard — per-shard detection would make the shards'
    translation semantics diverge.
    """
    candidates = detect_soft_fds(table, config=detection, columns=dimensions)

    def fit_pair(predictor: str, dependent: str) -> Optional[FDCandidate]:
        return evaluate_pair(
            table.column(predictor),
            table.column(dependent),
            predictor=predictor,
            dependent=dependent,
            config=detection,
        )

    return build_groups(candidates, fit_pair)


@dataclass
class COAXBuildReport:
    """Summary of one COAX build, used by benchmarks, the CLI and tests."""

    n_rows: int
    groups: List[FDGroup]
    primary_ratio: float
    per_model_inlier_fraction: Dict[str, float]
    indexed_dimensions: Tuple[str, ...]
    predicted_dimensions: Tuple[str, ...]
    primary_sort_dimension: str
    #: n - m - 1 in the paper's notation (grid dimensions of the primary index).
    primary_grid_dimensions: Tuple[str, ...]
    warnings: List[str] = field(default_factory=list)

    @property
    def n_groups(self) -> int:
        """Number of FD groups in use."""
        return len(self.groups)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"rows indexed            : {self.n_rows}",
            f"FD groups               : {self.n_groups}",
        ]
        for group in self.groups:
            lines.append(
                f"  {group.predictor} -> {', '.join(group.dependents)}"
            )
        lines.extend(
            [
                f"indexed dimensions      : {', '.join(self.indexed_dimensions)}",
                f"predicted dimensions    : {', '.join(self.predicted_dimensions) or '(none)'}",
                f"primary sort dimension  : {self.primary_sort_dimension}",
                f"primary grid dimensions : {', '.join(self.primary_grid_dimensions) or '(none)'}",
                f"primary index ratio     : {self.primary_ratio:.1%}",
            ]
        )
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)


@register_index
class COAXIndex(MultidimensionalIndex):
    """Correlation-aware multidimensional primary index."""

    name = "coax"

    def __init__(
        self,
        table: Table,
        *,
        config: Optional[COAXConfig] = None,
        groups: Optional[Sequence[FDGroup]] = None,
        row_ids: Optional[np.ndarray] = None,
        dimensions: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(table, row_ids=row_ids, dimensions=dimensions)
        self._config = config if config is not None else COAXConfig()
        config = self._config
        warnings: List[str] = []

        # ------------------------------------------------------------------
        # 1. Learn (or accept) the soft-FD groups.
        # ------------------------------------------------------------------
        build_table = table if row_ids is None else table.take(self._row_ids)
        if groups is None:
            learned_groups = self._detect_groups(build_table, config.detection)
        else:
            learned_groups = list(groups)
        if config.max_groups is not None:
            learned_groups = learned_groups[: config.max_groups]
        # Drop groups whose attributes are outside the indexed dimensions.
        usable_groups = [
            group
            for group in learned_groups
            if all(attr in self._dimensions for attr in group.attributes)
        ]
        if len(usable_groups) != len(learned_groups):
            warnings.append("dropped FD groups referencing non-indexed attributes")
        self._groups: List[FDGroup] = usable_groups

        # ------------------------------------------------------------------
        # 2. Partition rows into inliers and outliers.
        # ------------------------------------------------------------------
        partition = partition_rows(table, self._groups, row_ids=self._row_ids)
        self._partition = partition
        if partition.primary_ratio < config.min_primary_fraction:
            warnings.append(
                f"primary index retains only {partition.primary_ratio:.1%} of the data; "
                "the soft FDs may be too weak for COAX to pay off"
            )

        # ------------------------------------------------------------------
        # 3. Decide the reduced dimensionality of the primary index.
        # ------------------------------------------------------------------
        predicted = dependent_attributes(self._groups)
        indexed_dims = tuple(dim for dim in self._dimensions if dim not in predicted)
        sort_dim = config.primary_sort_dimension or self._default_sort_dimension(indexed_dims)
        if sort_dim not in indexed_dims:
            raise IndexBuildError(
                f"primary sort dimension {sort_dim!r} must be one of the indexed dimensions "
                f"{indexed_dims}"
            )
        self._indexed_dims = indexed_dims
        self._predicted_dims = tuple(sorted(predicted))
        self._sort_dim = sort_dim

        # ------------------------------------------------------------------
        # 4. Build the primary and the outlier index.
        # ------------------------------------------------------------------
        self._primary = SortedCellGridIndex(
            table,
            cells_per_dim=config.primary_cells_per_dim,
            sort_dimension=sort_dim,
            row_ids=partition.inlier_ids,
            dimensions=indexed_dims,
        )
        self._outlier = self._build_outlier_index(table, partition.outlier_ids)
        self._primary_box = bounding_box_of_rows(table, partition.inlier_ids)
        self._outlier_box = bounding_box_of_rows(table, partition.outlier_ids)

        # ------------------------------------------------------------------
        # 5. Columnar delta store for inserted records (update support).
        # ------------------------------------------------------------------
        self._delta = DeltaStore(tuple(table.schema), self._groups)
        self._next_row_id = int(table.n_rows)

        # ------------------------------------------------------------------
        # 6. Drift-aware model maintenance (optional; see fd.maintenance).
        # ------------------------------------------------------------------
        self._maintenance: Optional[MaintenanceManager] = None
        if config.maintenance.enabled and self._groups:
            self._maintenance = MaintenanceManager(
                self._groups,
                config.maintenance,
                partition.per_model_inlier_fraction,
            )

        self._report = COAXBuildReport(
            n_rows=self.n_rows,
            groups=list(self._groups),
            primary_ratio=partition.primary_ratio,
            per_model_inlier_fraction=dict(partition.per_model_inlier_fraction),
            indexed_dimensions=indexed_dims,
            predicted_dimensions=self._predicted_dims,
            primary_sort_dimension=sort_dim,
            primary_grid_dimensions=self._primary.grid_dimensions,
            warnings=warnings,
        )

    # ------------------------------------------------------------------
    # Structured restore (format v6)
    # ------------------------------------------------------------------
    @classmethod
    def _restore_structured(
        cls,
        table: Table,
        *,
        config: COAXConfig,
        groups: Sequence[FDGroup],
        dimensions: Sequence[str],
        partition: PartitionResult,
        indexed_dims: Sequence[str],
        predicted_dims: Sequence[str],
        sort_dim: str,
        primary: SortedCellGridIndex,
        outlier: MultidimensionalIndex,
        primary_box,
        outlier_box,
        report_warnings: Sequence[str] = (),
    ) -> "COAXIndex":
        """Reattach a COAX index from persisted derived state — no rebuild.

        Structured (format v6) restore: the inlier/outlier partition, the
        pre-built primary and outlier indexes and the bounding boxes are
        adopted verbatim, so no FD model is evaluated and nothing is
        re-sorted — cold start is O(metadata).  Only valid for an index
        aligned with its table (row id == position); the caller re-applies
        tombstones, delta state and drift-monitor state afterwards, exactly
        like the rebuild path does.
        """
        index = cls.__new__(cls)
        index._init_restored(
            table,
            row_ids=np.arange(table.n_rows, dtype=np.int64),
            columns={name: table.column(name) for name in table.schema},
            dimensions=dimensions,
        )
        index._config = config
        index._groups = list(groups)
        index._partition = partition
        index._indexed_dims = tuple(indexed_dims)
        index._predicted_dims = tuple(predicted_dims)
        index._sort_dim = sort_dim
        index._primary = primary
        index._outlier = outlier
        index._primary_box = primary_box
        index._outlier_box = outlier_box
        index._delta = DeltaStore(tuple(table.schema), index._groups)
        index._next_row_id = int(table.n_rows)
        index._maintenance = None
        if config.maintenance.enabled and index._groups:
            index._maintenance = MaintenanceManager(
                index._groups,
                config.maintenance,
                partition.per_model_inlier_fraction,
            )
        index._report = COAXBuildReport(
            n_rows=index.n_rows,
            groups=list(index._groups),
            primary_ratio=partition.primary_ratio,
            per_model_inlier_fraction=dict(partition.per_model_inlier_fraction),
            indexed_dimensions=index._indexed_dims,
            predicted_dimensions=index._predicted_dims,
            primary_sort_dimension=sort_dim,
            primary_grid_dimensions=index._primary.grid_dimensions,
            warnings=list(report_warnings),
        )
        return index

    # ------------------------------------------------------------------
    # Build helpers
    # ------------------------------------------------------------------
    def _detect_groups(self, table: Table, detection: DetectionConfig) -> List[FDGroup]:
        """Run soft-FD detection and grouping over the build table."""
        return learn_groups(table, detection, self._dimensions)

    def _default_sort_dimension(self, indexed_dims: Tuple[str, ...]) -> str:
        """Pick the in-cell sorted attribute of the primary index.

        The predictor of the largest FD group is preferred: queries on that
        group (direct or translated) reduce to a binary search, which is
        where COAX gains the most.  Without groups the first indexed
        dimension is used.
        """
        if not indexed_dims:
            raise IndexBuildError("COAX needs at least one indexed (non-predicted) dimension")
        for group in sorted(self._groups, key=lambda g: -g.n_attributes):
            if group.predictor in indexed_dims:
                return group.predictor
        return indexed_dims[0]

    def _build_outlier_index(self, table: Table, outlier_ids: np.ndarray) -> MultidimensionalIndex:
        """Instantiate the configured outlier index over all dimensions."""
        kind = self._config.outlier_index
        if kind == "sorted_cell_grid":
            return SortedCellGridIndex(
                table,
                cells_per_dim=self._config.outlier_cells_per_dim,
                sort_dimension=self._sort_dim if self._sort_dim in self._dimensions else None,
                row_ids=outlier_ids,
                dimensions=self._dimensions,
            )
        if kind == "uniform_grid":
            return UniformGridIndex(
                table,
                cells_per_dim=self._config.outlier_cells_per_dim,
                row_ids=outlier_ids,
                dimensions=self._dimensions,
            )
        if kind == "rtree":
            return RTreeIndex(
                table,
                node_capacity=self._config.outlier_node_capacity,
                row_ids=outlier_ids,
                dimensions=self._dimensions,
            )
        if kind == "full_scan":
            return FullScanIndex(table, row_ids=outlier_ids, dimensions=self._dimensions)
        raise IndexBuildError(f"unknown outlier index type {kind!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> COAXConfig:
        """The configuration the index was built with."""
        return self._config

    @property
    def groups(self) -> Tuple[FDGroup, ...]:
        """The FD groups in use."""
        return tuple(self._groups)

    @property
    def primary_index(self) -> SortedCellGridIndex:
        """The reduced-dimensionality primary index over the inliers."""
        return self._primary

    @property
    def outlier_index(self) -> MultidimensionalIndex:
        """The conventional index over the outliers."""
        return self._outlier

    @property
    def partition(self) -> PartitionResult:
        """The inlier/outlier partition of the build data."""
        return self._partition

    @property
    def primary_box(self) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
        """Bounding box of the inlier (primary-index) rows; ``None`` if empty.

        A conservative hull: incremental compaction only grows it and
        tombstones do not shrink it until a reclaiming compaction rebuilds
        it from survivors.  The sharded engine prunes whole shards against
        it.
        """
        return self._primary_box

    @property
    def outlier_box(self) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
        """Bounding box of the outlier rows; ``None`` if empty (same hull
        semantics as :attr:`primary_box`)."""
        return self._outlier_box

    @property
    def build_report(self) -> COAXBuildReport:
        """Summary of the build (groups, ratios, layout, warnings)."""
        return self._report

    @property
    def primary_ratio(self) -> float:
        """Fraction of records held by the primary index."""
        return self._partition.primary_ratio

    @property
    def delta(self) -> DeltaStore:
        """The columnar delta store holding not-yet-compacted inserts."""
        return self._delta

    @property
    def maintenance(self) -> Optional[MaintenanceManager]:
        """Drift monitors of the learned models (``None`` when disabled)."""
        return self._maintenance

    @property
    def next_row_id(self) -> int:
        """Row id the next inserted record will be assigned."""
        return self._next_row_id

    @property
    def rows_aligned(self) -> bool:
        """True when the index covers exactly rows 0..n-1 of its table in order.

        Only then can appended rows keep their assigned ids; both incremental
        compaction and persistence branch on this.
        """
        return self._table.n_rows == len(self._row_ids) and bool(
            np.array_equal(
                self._row_ids, np.arange(self._table.n_rows, dtype=np.int64)
            )
        )

    @property
    def n_pending(self) -> int:
        """Number of inserted records still sitting in the delta store."""
        return self._delta.n_pending

    @property
    def n_pending_primary(self) -> int:
        """Pending records the learned models route to the primary index."""
        return self._delta.n_pending_primary

    @property
    def n_pending_outlier(self) -> int:
        """Pending records violating some margin (outlier-bound)."""
        return self._delta.n_pending_outlier

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def plan(self, query: Rectangle) -> QueryPlan:
        """Planning decision for ``query`` (exposed for tests and benchmarks)."""
        return plan_query(
            query,
            self._groups,
            primary_box=self._primary_box,
            outlier_box=self._outlier_box,
        )

    def query(self, query: Rectangle) -> QueryResult:
        """Full query execution returning per-sub-index attribution."""
        plan = self.plan(query)
        rows_before = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_before = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        primary_ids = (
            self._primary.range_query(plan.primary_query.intersect(query))
            if plan.use_primary
            else np.empty(0, dtype=np.int64)
        )
        outlier_ids = (
            self._outlier.range_query(plan.outlier_query)
            if plan.use_outlier
            else np.empty(0, dtype=np.int64)
        )
        pending_ids = self._scan_pending(query)
        merged = merge_row_ids([primary_ids, outlier_ids, pending_ids])
        rows_after = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_after = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        # The delta scan examines every pending row (a vectorised rectangle
        # check over the whole buffer), so those rows count as examined too
        # — otherwise benchmarks under-report the work of un-compacted
        # inserts.  An empty rectangle scans nothing, mirroring scan().
        pending_examined = 0 if query.is_empty else self._delta.n_pending
        self.stats.record(
            rows_examined=rows_after - rows_before + pending_examined,
            rows_matched=len(merged),
            cells_visited=cells_after - cells_before,
        )
        return QueryResult(
            row_ids=merged,
            primary_row_ids=primary_ids,
            outlier_row_ids=outlier_ids,
            pending_row_ids=pending_ids,
            indexes_used={"primary": plan.use_primary, "outlier": plan.use_outlier},
        )

    def range_query(self, query: Rectangle) -> np.ndarray:
        """Original row ids of records matching ``query`` exactly."""
        if query.is_empty:
            return np.empty(0, dtype=np.int64)
        return self.query(query).row_ids

    def batch_range_query(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Original row ids for every query of a batch, sharing work batch-wide.

        True batch execution across every layer: the whole batch is planned
        and translated in one vectorized pass over its columnar bound
        matrices (:func:`translate_bounds_batch` + :func:`plan_query_flags`),
        each sub-index receives *one* batched call covering every query
        routed to it (the grid family executes those with its own vectorized
        batch kernels), and the delta store is scanned once for all
        rectangles.
        Results are positionally aligned and identical to
        ``[range_query(q) for q in queries]``.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return []

        # Columnar form of the whole batch: per-attribute bound matrices.
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        n_live = int(live.sum())
        if n_live == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]

        # Vectorized batch translation (Equation 2 as array arithmetic) and
        # batch planning (empty / no-inlier / bounding-box pruning as masks).
        translated_bounds, no_inlier = translate_bounds_batch(
            bounds, n_queries, self._groups
        )
        use_primary, use_outlier = plan_query_flags(
            bounds,
            translated_bounds,
            no_inlier,
            n_queries,
            primary_box=self._primary_box,
            outlier_box=self._outlier_box,
        )
        ids, qids = self.batch_scatter_flat(
            queries,
            np.arange(n_queries, dtype=np.int64),
            bounds,
            translated_bounds,
            use_primary,
            use_outlier,
            n_live,
        )
        return merge_flat_row_ids(ids, qids, n_queries)

    def batch_scatter_flat(
        self,
        queries: Sequence[Rectangle],
        slots: np.ndarray,
        bounds,
        translated_bounds,
        use_primary: np.ndarray,
        use_outlier: np.ndarray,
        n_live: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Execute a pre-planned columnar sub-batch, returning flat streams.

        The execution core shared by :meth:`batch_range_query` and the
        sharded engine's scatter step.  ``slots`` selects the sub-batch out
        of ``queries``; ``bounds`` / ``translated_bounds`` and the planner
        flags are positionally aligned with ``slots`` (the caller has
        already translated and planned, so nothing is re-derived here —
        the engine pays batch translation once for all shards).  Returns
        ``(row_ids, sub_qids)`` where ``sub_qids[j]`` indexes into
        ``slots``; the caller owns the fused-key merge, so a scatter over
        many shards merges once globally instead of once per shard.

        Statistics are recorded exactly like :meth:`batch_range_query`;
        ``rows_matched`` uses the flat stream length, which equals the
        merged count because the primary, outlier and pending result sets
        are disjoint by construction (disjoint row-id coverage, and a
        pending id that also exists in the main structures is tombstoned
        there).
        """
        n_sub = len(slots)
        rows_before = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_before = self._primary.stats.cells_visited + self._outlier.stats.cells_visited

        # One batched call per sub-index.  The primary consumes the
        # translated bound matrices directly (it is always a sorted-cell
        # grid); so does a grid-family outlier index, while other outlier
        # structures fall back to their rectangle-level batch entry point.
        id_parts: List[np.ndarray] = []
        qid_parts: List[np.ndarray] = []
        all_qids = np.arange(n_sub, dtype=np.int64)
        ids, counts = self._primary.batch_flat_from_bounds(
            translated_bounds, n_sub, use_primary, int(use_primary.sum())
        )
        id_parts.append(ids)
        qid_parts.append(np.repeat(all_qids, counts))
        if isinstance(self._outlier, SortedCellGridIndex):
            ids, counts = self._outlier.batch_flat_from_bounds(
                bounds, n_sub, use_outlier, int(use_outlier.sum())
            )
            id_parts.append(ids)
            qid_parts.append(np.repeat(all_qids, counts))
        else:
            outlier_slots = np.flatnonzero(use_outlier)
            if len(outlier_slots):
                batch = [queries[slots[i]] for i in outlier_slots]
                ids, counts = self._outlier.batch_range_query_flat(batch)
                id_parts.append(ids)
                qid_parts.append(np.repeat(outlier_slots, counts))

        # One delta-store pass for every rectangle of the sub-batch.
        if self._delta.n_pending:
            pending_results = self._delta.scan_batch([queries[i] for i in slots])
            id_parts.append(np.concatenate(pending_results))
            qid_parts.append(
                np.repeat(all_qids, [len(part) for part in pending_results])
            )

        flat_ids = np.concatenate(id_parts)
        flat_qids = np.concatenate(qid_parts)
        rows_after = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_after = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        # Every live (non-empty) query of the batch examines the whole
        # pending buffer, exactly like the scalar path records per query —
        # batch and sequential execution must leave identical statistics.
        self.stats.record_batch(
            n_live,
            rows_examined=rows_after - rows_before + self._delta.n_pending * n_live,
            rows_matched=int(len(flat_ids)),
            cells_visited=cells_after - cells_before,
        )
        return flat_ids, flat_qids

    # ------------------------------------------------------------------
    # Executors: aggregate pushdown and top-k/kNN across all three stores
    # ------------------------------------------------------------------
    def batch_aggregate_partial(
        self, queries: Sequence[Rectangle], spec: Aggregate
    ) -> AggregatePartial:
        """Per-query aggregate accumulators merged across primary/outlier/delta.

        The aggregate twin of :meth:`batch_range_query`: the batch is
        translated and planned once, each sub-index folds its routed
        sub-batch with its own pushdown (the grid family folds candidate
        runs without gathering ids), the delta store folds the pending
        rows in one blocked broadcast, and the three partials merge
        component-wise — exact because the row subsets are disjoint.
        """
        queries = list(queries)
        n_queries = len(queries)
        partial = AggregatePartial.identity(n_queries)
        if n_queries == 0:
            return partial
        bounds = batch_bounds(queries)
        live = np.ones(n_queries, dtype=bool)
        for lows, highs in bounds.values():
            live &= lows <= highs
        n_live = int(live.sum())
        if n_live == 0:
            self.stats.record_batch(0, aggregates=n_queries)
            return partial
        translated_bounds, no_inlier = translate_bounds_batch(
            bounds, n_queries, self._groups
        )
        use_primary, use_outlier = plan_query_flags(
            bounds,
            translated_bounds,
            no_inlier,
            n_queries,
            primary_box=self._primary_box,
            outlier_box=self._outlier_box,
        )
        partial.merge(
            self.batch_scatter_aggregate(
                queries,
                np.arange(n_queries, dtype=np.int64),
                bounds,
                translated_bounds,
                use_primary,
                use_outlier,
                n_live,
                spec,
            )
        )
        return partial

    def batch_scatter_aggregate(
        self,
        queries: Sequence[Rectangle],
        slots: np.ndarray,
        bounds,
        translated_bounds,
        use_primary: np.ndarray,
        use_outlier: np.ndarray,
        n_live: int,
        spec: Aggregate,
    ) -> AggregatePartial:
        """Execute a pre-planned aggregate sub-batch, returning accumulators.

        The aggregate twin of :meth:`batch_scatter_flat` with the same
        calling convention: ``slots`` selects the sub-batch out of
        ``queries`` and the columnar bounds / planner flags are
        positionally aligned with it, so the sharded engine pays batch
        translation and planning once for all shards.  Returns one
        :class:`AggregatePartial` slot per sub-query; the caller owns the
        cross-shard merge, which moves O(sub-batch) floats through a
        process pool instead of O(rows) ids.
        """
        n_sub = len(slots)
        partial = AggregatePartial.identity(n_sub)
        rows_before = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_before = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        partial.merge(
            self._primary.batch_aggregate_from_bounds(
                translated_bounds, n_sub, use_primary, int(use_primary.sum()), spec
            )
        )
        if isinstance(self._outlier, SortedCellGridIndex):
            partial.merge(
                self._outlier.batch_aggregate_from_bounds(
                    bounds, n_sub, use_outlier, int(use_outlier.sum()), spec
                )
            )
        else:
            outlier_slots = np.flatnonzero(use_outlier)
            if len(outlier_slots):
                sub = self._outlier.batch_aggregate_partial(
                    [queries[slots[i]] for i in outlier_slots], spec
                )
                partial.merge_at(outlier_slots, sub)
        if self._delta.n_pending:
            self._delta.fold_aggregate_batch(
                [queries[i] for i in slots], spec, partial
            )
        rows_after = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_after = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        self.stats.record_batch(
            n_live,
            rows_examined=rows_after - rows_before + self._delta.n_pending * n_live,
            rows_matched=int(partial.count.sum()),
            cells_visited=cells_after - cells_before,
            aggregates=n_sub,
        )
        return partial

    def _knn_aux_axes(self, point: Mapping[str, float]) -> Dict[int, Tuple[float, float, float]]:
        """FD translation of the query point onto the primary's grid axes.

        For a predictor axis not in the point whose dependent *is* in the
        point, Equation 2's linear model yields a distance bound valid for
        every primary (inlier) row: with ``coordinate = (y - intercept) /
        slope``, ``|v_dep - y| >= |slope|·|v_pred - coordinate| - slack``
        where ``slack = max(eps_lb, eps_ub)`` bounds the residual.  The
        ring search uses it to seed and prune on axes the point never
        names.  Spline models (no global slope) and near-flat slopes carry
        no usable bound and are skipped.
        """
        aux: Dict[int, Tuple[float, float, float]] = {}
        grid_dims = self._primary.grid_dimensions
        for group in self._groups:
            if group.predictor not in grid_dims or group.predictor in point:
                continue
            axis = grid_dims.index(group.predictor)
            for dependent in group.dependents:
                if dependent not in point:
                    continue
                model = group.model_for(dependent)
                slope = getattr(model, "slope", None)
                if slope is None or abs(slope) < 1e-12:
                    continue
                coordinate = (float(point[dependent]) - model.intercept) / slope
                aux[axis] = (coordinate, abs(slope), max(model.eps_lb, model.eps_ub))
                break
        return aux

    def knn_partial(
        self, point: Mapping[str, float], k: int, *, metric: str = "l2"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """kNN candidates merged across primary (ring search), outlier, delta."""
        rows_before = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_before = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        rings_before = self._primary.stats.rings_expanded + self._outlier.stats.rings_expanded
        parts = [
            self._primary.knn_partial(
                point, k, metric=metric, aux_axes=self._knn_aux_axes(point)
            ),
            self._outlier.knn_partial(point, k, metric=metric),
            self._delta.knn_candidates(point, k, metric),
        ]
        keys, ids = merge_topk(parts, k)
        rows_after = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_after = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        rings_after = self._primary.stats.rings_expanded + self._outlier.stats.rings_expanded
        self.stats.record(
            rows_examined=rows_after - rows_before + self._delta.n_pending,
            cells_visited=cells_after - cells_before,
            knn_queries=1,
            rings_expanded=rings_after - rings_before,
        )
        return keys, ids

    def topk_partial(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, np.ndarray]:
        """By-column top-k candidates merged across primary/outlier/delta."""
        if query.is_empty:
            self.stats.record(knn_queries=1)
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        plan = self.plan(query)
        rows_before = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_before = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        parts = []
        if plan.use_primary:
            parts.append(
                self._primary.topk_partial(plan.primary_query.intersect(query), spec)
            )
        if plan.use_outlier:
            parts.append(self._outlier.topk_partial(plan.outlier_query, spec))
        parts.append(self._delta.topk_candidates(query, spec))
        keys, ids = merge_topk(parts, spec.k, largest=spec.largest)
        rows_after = self._primary.stats.rows_examined + self._outlier.stats.rows_examined
        cells_after = self._primary.stats.cells_visited + self._outlier.stats.cells_visited
        self.stats.record(
            rows_examined=rows_after - rows_before + self._delta.n_pending,
            cells_visited=cells_after - cells_before,
            knn_queries=1,
        )
        return keys, ids

    def translated_query(self, query: Rectangle) -> Rectangle:
        """The rewritten query the primary index receives (for inspection)."""
        return translate_query(query, self._groups)

    def _range_query_positions(self, query: Rectangle) -> np.ndarray:
        """Positional ids; only needed to satisfy the base-class contract."""
        matches = self.range_query(query)
        # Map original row ids back to positions within this index's subset
        # via the cached lookup (no per-query argsort).
        return self.positions_of(matches)

    def _scan_pending(self, query: Rectangle) -> np.ndarray:
        """Vectorised rectangle scan of the delta store."""
        return self._delta.scan(query)

    # ------------------------------------------------------------------
    # Updates (paper future work)
    # ------------------------------------------------------------------
    def insert(self, record: Mapping[str, float]) -> int:
        """Insert a single record, returning its assigned row id.

        Convenience wrapper over :meth:`insert_batch`; for any non-trivial
        write volume the batch API is orders of magnitude faster.
        """
        return int(self.insert_batch([record])[0])

    def insert_batch(self, batch: BatchLike) -> np.ndarray:
        """Insert a batch of records, returning their assigned row ids.

        ``batch`` may be a :class:`Table`, a mapping of column arrays, or a
        sequence of record dicts.  The whole batch is routed by the learned
        models in one vectorised margin check per model: rows inside every
        margin logically belong to the primary index, the rest to the
        outlier index.  Either way they land in the columnar delta store,
        are immediately visible to queries, and are folded into the main
        structures by :meth:`compact` — automatically once the configured
        ``auto_compact_threshold`` is reached.

        Mutation entry point: holds the single-writer lock for the whole
        batch (see the concurrency contract in :mod:`repro.indexes.base`).
        """
        with self._write_lock:
            columns = coerce_batch(batch, tuple(self._table.schema))
            n_new = len(next(iter(columns.values()))) if columns else 0
            row_ids = self._next_row_id + np.arange(n_new, dtype=np.int64)
            if n_new == 0:
                return row_ids
            self._delta.append_batch(columns, row_ids)
            # Claim the ids only after the append succeeded: a batch that
            # blows up mid-routing must not permanently burn its id range.
            self._next_row_id += n_new
            self._observe_pending_tail(columns, n_new)
            self._maybe_auto_compact()
            return row_ids

    def _observe_pending_tail(self, columns: Mapping[str, np.ndarray], n_new: int) -> None:
        """Stream a just-appended batch into the drift monitors.

        The delta store has already recorded every per-model margin mask
        for routing; the monitors read the batch's slice of those buffers,
        so maintenance never re-evaluates a model on the write path.
        """
        if self._maintenance is None or n_new == 0:
            return
        masks = {
            name: self._delta.model_mask(name)[-n_new:]
            for name in self._maintenance.model_names
        }
        self._maintenance.observe_batch(columns, masks)

    def _maybe_auto_compact(self) -> None:
        """Compact when either configured trigger (pending count or
        tombstone fraction) has been reached."""
        threshold = self._config.auto_compact_threshold
        if threshold is not None and self._delta.n_pending >= threshold:
            self.compact()
            return
        fraction = self._config.auto_compact_tombstone_fraction
        if fraction is not None and self.tombstone_fraction >= fraction:
            self.compact()

    # ------------------------------------------------------------------
    # Deletes and in-place updates
    # ------------------------------------------------------------------
    def delete(self, row_id: int) -> bool:
        """Delete one record by row id; ``True`` if it was live.

        Convenience wrapper over :meth:`delete_batch`; for any non-trivial
        delete volume the batch API is orders of magnitude faster.
        """
        return self.delete_batch(np.array([row_id], dtype=np.int64)) == 1

    def delete_batch(self, row_ids: np.ndarray) -> int:
        """Delete records by row id; returns how many were actually live.

        Main-structure rows are tombstoned in a bitmap (``O(k log n)`` for
        the whole batch) and disappear from results immediately — every
        read path masks tombstoned positions next to its exact post-filter.
        Pending rows are removed from the delta buffers in place, with the
        per-model routing counts decremented exactly.  Ids that are
        unknown, already deleted, or not covered by this index are skipped,
        so the call is idempotent.  Deleted ids are retired forever (new
        inserts never reuse them); the physical space is reclaimed by the
        next :meth:`compact`, which triggers automatically once
        ``COAXConfig.auto_compact_tombstone_fraction`` is exceeded.

        Mutation entry point: holds the single-writer lock for the whole
        batch (see the concurrency contract in :mod:`repro.indexes.base`).
        """
        with self._write_lock:
            row_ids = np.unique(np.asarray(row_ids, dtype=np.int64))
            if len(row_ids) == 0:
                return 0
            deleted = self._delta.delete_rows(row_ids)
            deleted += self._delete_main_rows(row_ids)
            if deleted:
                self._maybe_auto_compact()
            return int(deleted)

    def delete_rows(self, row_ids: np.ndarray, *, assume_unique: bool = False) -> int:
        """Generic tombstone entry point (see the base class).

        Routes through the full COAX delete — delta store included — so the
        facade and the sub-indexes can never diverge.  ``assume_unique`` is
        accepted for signature compatibility; :meth:`delete_batch`
        de-duplicates once internally either way.
        """
        del assume_unique
        return self.delete_batch(row_ids)

    def delete_where(self, query: Rectangle) -> np.ndarray:
        """Delete every record matching ``query``; returns their row ids.

        Mutation entry point: the lock spans the query *and* the delete,
        so no concurrent mutation can slip between finding the matches
        and tombstoning them.
        """
        with self._write_lock:
            matches = self.range_query(query)
            self.delete_batch(matches)
            return matches

    def _delete_main_rows(self, row_ids: np.ndarray) -> int:
        """Tombstone main-structure rows on the facade and both sub-indexes.

        ``row_ids`` must already be de-duplicated; the sort is paid once by
        the caller instead of once per structure.
        """
        newly = MultidimensionalIndex.delete_rows(self, row_ids, assume_unique=True)
        if newly:
            self._primary.delete_rows(row_ids, assume_unique=True)
            self._outlier.delete_rows(row_ids, assume_unique=True)
        return newly

    def _live_ids_mask(self, row_ids: np.ndarray) -> np.ndarray:
        """Which of ``row_ids`` are currently live (main or pending)."""
        mask = self.rows_live(row_ids)
        if self._delta.n_pending:
            mask |= np.isin(row_ids, self._delta.row_ids)
        return mask

    def update_batch(self, row_ids: np.ndarray, batch: BatchLike) -> np.ndarray:
        """Replace live records in place, preserving their row ids.

        ``batch`` (same forms as :meth:`insert_batch`) holds the new
        attribute values, positionally aligned with ``row_ids``.  Each
        update is a delete plus a reinsert through the delta store: the old
        version is tombstoned (main rows) or removed in place (pending
        rows) and the new version is appended under the *same* row id with
        its routing re-evaluated against the learned models — ids stay
        aligned with table positions, the invariant compaction relies on to
        write updated values back in place.  Unknown or already-deleted ids
        raise ``KeyError`` (a partial update never applies silently);
        duplicate ids in one batch raise ``ValueError``.  Returns
        ``row_ids`` unchanged, mirroring :meth:`insert_batch`.

        Mutation entry point: holds the single-writer lock for the whole
        batch (see the concurrency contract in :mod:`repro.indexes.base`).
        """
        with self._write_lock:
            columns = coerce_batch(batch, tuple(self._table.schema))
            row_ids = np.asarray(row_ids, dtype=np.int64)
            n_new = len(next(iter(columns.values()))) if columns else 0
            if n_new != len(row_ids):
                raise ValueError(
                    f"update batch has {n_new} rows for {len(row_ids)} row ids"
                )
            if n_new == 0:
                return row_ids
            if len(np.unique(row_ids)) != len(row_ids):
                raise ValueError("update batch contains duplicate row ids")
            live = self._live_ids_mask(row_ids)
            if not live.all():
                missing = row_ids[~live]
                raise KeyError(
                    f"cannot update unknown or deleted row ids: {missing.tolist()[:10]}"
                )
            self._delta.delete_rows(row_ids)
            self._delete_main_rows(row_ids)
            self._delta.append_batch(columns, row_ids)
            self._observe_pending_tail(columns, n_new)
            self._maybe_auto_compact()
            return row_ids

    def compact(self) -> "COAXIndex":
        """Fold the delta store into the main structures in place.

        Insert-only compaction is incremental: the learned FD groups are
        kept (no re-detection), the routing recorded at insert time is
        reused (no re-partitioning), and the primary grid absorbs its new
        rows into the existing quantile layout (no re-quantiling).  The
        outlier index is rebuilt only when its type cannot merge in place —
        it holds the small minority of the data by construction.

        When tombstones exist (or the index covers a table subset), the
        tombstoned rows are physically reclaimed instead: the index is
        rebuilt with the learned groups over the survivors only, so
        partition fractions and the primary/outlier bounding boxes are
        recomputed from live rows.  Row ids are preserved either way —
        compaction never renumbers.  Returns ``self`` so existing
        ``index = index.compact()`` call sites keep working.

        With drift-aware maintenance enabled
        (``COAXConfig.maintenance.enabled``), compaction first consults the
        model monitors: *reuse* keeps the fast paths above untouched,
        *remargin* widens the affected models' margins in place (bands
        only grow, so existing primary rows stay covered — no structural
        work), and *refit* replaces the models from their refreshed
        posteriors and re-partitions the affected rows through the
        reclaiming rebuild.

        Mutation entry point: holds the single-writer lock for the whole
        fold (see the concurrency contract in :mod:`repro.indexes.base`).
        """
        with self._write_lock:
            refresh = REUSE
            refit_groups: Optional[List[FDGroup]] = None
            if self._maintenance is not None:
                outcome = self._maintenance.refresh(self._groups)
                refresh = outcome.action
                if refresh == REFIT:
                    # Refitted margins may shrink, so the groups are only
                    # adopted together with the re-partition — the rebuild
                    # below consumes them, and the monitors reset only
                    # after it commits: a failed rebuild leaves the old
                    # models, structures AND monitor state fully
                    # consistent.
                    refit_groups = list(outcome.groups)
                elif refresh != REUSE:
                    # Widened margins are safe to adopt immediately: every
                    # primary-index record inside the old band is inside
                    # the new one too.
                    self._adopt_groups(outcome.groups)
                    self._maintenance.commit(outcome)
            if (
                self._delta.n_pending == 0
                and self._n_tombstoned == 0
                and refresh != REFIT
            ):
                return self
            if (
                self.rows_aligned
                and self._n_tombstoned == 0
                and refresh != REFIT
            ):
                pending_ids = self._delta.row_ids.copy()
                pending_inliers = self._delta.inlier_mask.copy()
                pending_model_counts = self._delta.per_model_inlier_counts
                self._compact_incremental(
                    pending_ids, pending_inliers, pending_model_counts
                )
            else:
                self._compact_reclaim(groups=refit_groups)
                if refresh == REFIT:
                    self._maintenance.commit(outcome)
            self._delta.clear()
            if self._maintenance is not None and refresh != REUSE:
                # The refreshed band's baseline follows the partition
                # fractions the fold just recomputed (reclaim) or merged
                # (incremental), so the next epoch's reactive triggers
                # compare against the band actually being monitored —
                # identically on both compaction paths.
                self._maintenance.rebind(
                    self._groups, self._partition.per_model_inlier_fraction
                )
            return self

    def _adopt_groups(self, groups: Sequence[FDGroup]) -> None:
        """Switch to refreshed FD models (same ``predictor->dependent`` set).

        Only sound for *monotonically widened* margins (or together with a
        re-partition, which the reclaiming rebuild handles itself via its
        ``groups`` argument): future routing, translation and planning
        immediately use the new models, while already-routed pending rows
        keep their recorded masks (conservative: stale narrower margins
        can only send a row to the outlier index, where every query finds
        it without any model).
        """
        self._groups = list(groups)
        self._delta.set_groups(self._groups)
        self._report = replace(self._report, groups=list(self._groups))

    def apply_refresh(self, groups: Sequence[FDGroup]) -> None:
        """Adopt externally *widened* models (engine-coordinated re-margin).

        The sharded engine owns ONE shared maintenance manager and pushes
        the refreshed groups to every shard through this entry point, so
        all shards keep identical translation semantics.  Only sound for
        monotonically widened margins — no structural work is done; a
        refit (margins may shrink, rows must move) goes through the
        engine's transactional :meth:`_build_reclaimed` /
        :meth:`_swap_reclaimed` protocol instead.
        """
        with self._write_lock:
            self._adopt_groups(
                [
                    group
                    for group in groups
                    if all(attr in self._dimensions for attr in group.attributes)
                ]
            )

    def _pending_tail_table(self) -> Table:
        """Tail table spanning ids ``[table.n_rows, next_row_id)``.

        Each live pending row is scattered to position ``id - n_rows`` so
        the invariant *row id == table position* survives concatenation.
        Slots whose id was deleted from the delta store before compaction
        are filled with NaN; they are never covered by any row-id set, so
        no structure or query ever reads them.
        """
        n_rows = self._table.n_rows
        span = self._next_row_id - n_rows
        slots = self._delta.row_ids - n_rows
        columns: Dict[str, np.ndarray] = {}
        for name in self._table.schema:
            tail = np.full(span, np.nan)
            tail[slots] = self._delta.column(name)
            columns[name] = tail
        return Table(columns)

    def _compact_incremental(
        self,
        pending_ids: np.ndarray,
        pending_inliers: np.ndarray,
        pending_model_counts: Dict[str, int],
    ) -> None:
        """Merge pending rows into the existing structures (aligned case)."""
        combined = self._table.concat(self._pending_tail_table())
        new_inlier_ids = pending_ids[pending_inliers]
        new_outlier_ids = pending_ids[~pending_inliers]
        # Primary grid: absorb into the existing quantile layout.
        self._primary.absorb_rows(combined, new_inlier_ids)
        # Outlier index: absorb when the structure supports it, else rebuild
        # (over the outlier minority only).
        outlier_ids = np.concatenate([self._partition.outlier_ids, new_outlier_ids])
        if isinstance(self._outlier, SortedCellGridIndex):
            self._outlier.absorb_rows(combined, new_outlier_ids)
        else:
            self._outlier = self._build_outlier_index(combined, outlier_ids)
        # Flat row bookkeeping of the COAX facade itself.
        n_old = len(self._row_ids)
        n_new = len(pending_ids)
        self._append_rows(combined, pending_ids)
        inlier_ids = np.concatenate([self._partition.inlier_ids, new_inlier_ids])
        # Per-model fractions merge exactly as weighted means using the
        # counts the delta store recorded at append time — no model is
        # re-evaluated during compaction.
        per_model = {
            name: (old_fraction * n_old + pending_model_counts.get(name, 0))
            / (n_old + n_new)
            for name, old_fraction in self._partition.per_model_inlier_fraction.items()
        }
        self._partition = PartitionResult(
            inlier_ids=inlier_ids,
            outlier_ids=outlier_ids,
            per_model_inlier_fraction=per_model,
        )
        # Bounding boxes only ever grow: hull of the old box and the batch box.
        self._primary_box = merge_boxes(
            self._primary_box, bounding_box_of_rows(combined, new_inlier_ids)
        )
        self._outlier_box = merge_boxes(
            self._outlier_box, bounding_box_of_rows(combined, new_outlier_ids)
        )
        self._report = replace(
            self._report,
            n_rows=self.n_rows,
            primary_ratio=self._partition.primary_ratio,
            per_model_inlier_fraction=dict(per_model),
        )

    def _compact_reclaim(self, groups: Optional[Sequence[FDGroup]] = None) -> None:
        """Rebuild over the survivors with the learned groups, keeping ids.

        Used whenever tombstones exist, the index covers a table subset, or
        a model refit requires a re-partition (``groups`` then carries the
        refitted models): tombstoned rows are dropped from every structure
        (directories, partition, bounding boxes and the per-index column
        copies are all recomputed from live rows only), updated pending
        rows are written back to their original table positions, and new
        pending rows land at ``position == id`` in the extended table — so
        every surviving record keeps the row id it has always had.  Dead
        positions stay in the backing table as uncovered slots; every index
        structure and column copy is rebuilt without them, which is where
        the memory and scan cost of deleted rows actually lived.

        Exception-safe: the fresh index (including any refitted groups) is
        fully built *before* anything on ``self`` changes, so a failed
        rebuild leaves the index exactly as it was — structures, groups
        and delta store all still mutually consistent.
        """
        self._swap_reclaimed(self._build_reclaimed(groups))

    def _build_reclaimed(
        self, groups: Optional[Sequence[FDGroup]] = None
    ) -> "COAXIndex":
        """Phase 1 of a reclaiming rebuild: construct the fresh index.

        Pure with respect to ``self`` — nothing is mutated, so a failure
        here (allocation, outlier-index build, ...) is harmless.  The
        engine's coordinated refit uses this directly to prepare every
        shard before committing any of them.
        """
        pending_ids = self._delta.row_ids.copy()
        n_rows = self._table.n_rows
        updated = pending_ids < n_rows  # in-place updates of existing rows
        span = self._next_row_id - n_rows
        columns: Dict[str, np.ndarray] = {}
        for name in self._table.schema:
            base = self._table.column(name)
            values = self._delta.column(name)
            if updated.any():
                base = base.copy()
                base[pending_ids[updated]] = values[updated]
            tail = np.full(span, np.nan)
            tail[pending_ids[~updated] - n_rows] = values[~updated]
            columns[name] = np.concatenate([base, tail])
        combined = Table(columns)
        survivors = np.union1d(self.live_row_ids(), pending_ids)
        return COAXIndex(
            combined,
            config=self._config,
            groups=list(groups) if groups is not None else self._groups,
            row_ids=survivors,
            dimensions=self._dimensions,
        )

    def _swap_reclaimed(self, fresh: "COAXIndex") -> None:
        """Phase 2 of a reclaiming rebuild: adopt the fresh index's state.

        Nothing here allocates or can meaningfully fail — the commit step
        of the build-then-swap protocol.
        """
        stats = self.stats
        next_row_id = self._next_row_id
        # The lock identity must survive the rebuild: concurrent readers
        # and the sharded engine hold references to *this* lock, and the
        # current thread is inside it right now.  The maintenance manager
        # survives too — its monitors keep their streamed statistics and
        # just follow the rebuilt index's model objects and baselines.
        write_lock = self._write_lock
        maintenance = self._maintenance
        self.__dict__.update(fresh.__dict__)
        self.stats = stats
        self._next_row_id = next_row_id
        self._write_lock = write_lock
        self._maintenance = maintenance
        if maintenance is not None:
            maintenance.rebind(
                self._groups, self._partition.per_model_inlier_fraction
            )

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def directory_bytes(self) -> int:
        """Primary + outlier directories plus the FD model parameters."""
        model_bytes = sum(group.memory_bytes() for group in self._groups)
        return self._primary.directory_bytes() + self._outlier.directory_bytes() + model_bytes

    def memory_breakdown(self) -> Dict[str, int]:
        """Directory bytes per component (primary, outlier, models)."""
        return {
            "primary": self._primary.directory_bytes(),
            "outlier": self._outlier.directory_bytes(),
            "models": sum(group.memory_bytes() for group in self._groups),
        }
