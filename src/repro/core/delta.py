"""Columnar delta store for inserted records (the COAX update subsystem).

The paper leaves updates as future work; this module realises them with a
write-optimised columnar buffer in front of the read-optimised main
structures, the classic delta-store / main-store split of column stores:

* inserted batches land in per-attribute NumPy append buffers with
  amortised geometric growth — an insert of ``k`` rows is ``k`` array
  writes, not ``k`` Python dict allocations;
* routing against the learned soft-FD models is vectorised: one
  ``within_margin`` evaluation per model over the whole batch decides which
  rows logically belong to the primary index and which to the outlier
  index (the same batch-margin primitive the build-time partitioner uses);
* query-time merging is a vectorised rectangle scan over the active buffer
  prefix — no per-row Python loop, however many rows are pending;
* compaction (:meth:`COAXIndex.compact`) drains the buffer into the main
  structures and :meth:`clear`\\ s it; the recorded routing masks are
  reused so nothing is re-partitioned.

The store also exposes its raw state (:meth:`state` / :meth:`load_state`)
so persistence can round-trip an index without forcing a compaction first.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.executors import (
    Aggregate,
    AggregatePartial,
    TopK,
    point_distances,
    select_topk,
)
from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.fd.groups import FDGroup, per_model_inlier_masks

__all__ = ["DeltaStore", "NonFiniteBatchError", "coerce_batch"]

#: Initial capacity (rows) of a freshly created delta store.
INITIAL_CAPACITY = 256
#: Geometric growth factor of the append buffers.
GROWTH_FACTOR = 2.0

def _column_hull(values: np.ndarray) -> Tuple[float, float]:
    """NaN-safe ``(min, max)`` of one column for the incremental hull.

    ``fmin``/``fmax`` ignore NaN unless every value is NaN, in which case
    the hull falls back to the unbounded interval: the box may then
    over-cover but can never under-cover live pending rows, which is the
    one property shard pruning relies on.  (The insert path already
    rejects non-finite values in :func:`coerce_batch`; this is the
    backstop for direct ``append_batch`` callers.)
    """
    low = np.fmin.reduce(values)
    high = np.fmax.reduce(values)
    if np.isnan(low) or np.isnan(high):
        return -np.inf, np.inf
    return float(low), float(high)


#: Anything accepted as an insert batch: a table, a column mapping, or a
#: sequence of record dicts (the slow but convenient path).
BatchLike = Union[Table, Mapping[str, np.ndarray], Sequence[Mapping[str, float]]]


class NonFiniteBatchError(ValueError):
    """An insert/update batch contains NaN or infinite values.

    Record values must be finite: NaN is the library's dead-slot marker in
    backing tables, and a NaN reaching the delta store's incremental hull
    would poison every box comparison (NaN compares ``False``), letting
    engine-level shard pruning skip shards that hold live pending rows.
    Subclasses ``ValueError`` so pre-existing handlers keep working; the
    offending attribute name is carried for programmatic handling.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        super().__init__(
            f"batch column {attribute!r} contains non-finite values "
            "(NaN/inf record values are not supported)"
        )


def coerce_batch(batch: BatchLike, schema: Sequence[str]) -> Dict[str, np.ndarray]:
    """Normalise an insert batch to float64 column arrays in schema order.

    Raises ``ValueError`` when attributes are missing or column lengths
    disagree, and the typed :class:`NonFiniteBatchError` when any value is
    NaN or infinite; extra attributes are ignored so callers can pass
    richer records.
    """
    if isinstance(batch, Table):
        columns: Mapping[str, np.ndarray] = batch.columns()
    elif isinstance(batch, Mapping):
        columns = batch
    else:
        records = list(batch)
        if not records:
            return {name: np.empty(0, dtype=np.float64) for name in schema}
        missing = [name for name in schema if name not in records[0]]
        if missing:
            raise ValueError(f"record is missing attributes: {missing}")
        try:
            columns = {
                name: np.array(
                    [float(record[name]) for record in records], dtype=np.float64
                )
                for name in schema
            }
        except KeyError as exc:
            raise ValueError(f"record is missing attributes: [{exc.args[0]!r}]") from exc
    missing = [name for name in schema if name not in columns]
    if missing:
        raise ValueError(f"batch is missing attributes: {missing}")
    arrays: Dict[str, np.ndarray] = {}
    n_rows: Optional[int] = None
    for name in schema:
        array = np.asarray(columns[name], dtype=np.float64).ravel()
        if n_rows is None:
            n_rows = len(array)
        elif len(array) != n_rows:
            raise ValueError(
                f"batch column {name!r} has {len(array)} rows, expected {n_rows}"
            )
        if not np.isfinite(array).all():
            raise NonFiniteBatchError(name)
        arrays[name] = array
    return arrays


class DeltaStore:
    """Columnar append buffer holding records inserted since the last compaction."""

    def __init__(
        self,
        schema: Sequence[str],
        groups: Sequence[FDGroup] = (),
        *,
        initial_capacity: int = INITIAL_CAPACITY,
    ) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be at least 1")
        self._schema: Tuple[str, ...] = tuple(schema)
        self._groups: Tuple[FDGroup, ...] = tuple(groups)
        self._capacity = int(initial_capacity)
        self._size = 0
        self._buffers: Dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=np.float64) for name in self._schema
        }
        self._row_ids = np.empty(self._capacity, dtype=np.int64)
        self._inlier = np.empty(self._capacity, dtype=bool)
        # Per "predictor->dependent" model: one boolean buffer recording,
        # row by row, whether the record sits inside that model's margins.
        # Keeping the per-row masks (not just counts) means deletes can
        # decrement the routing bookkeeping exactly and persistence can
        # restore it without ever re-evaluating a model.
        self._model_names: Tuple[str, ...] = tuple(
            f"{group.predictor}->{dependent}"
            for group in self._groups
            for dependent in group.dependents
        )
        self._model_masks: Dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=bool) for name in self._model_names
        }
        # Incremental bounding box of everything ever appended since the
        # last clear() (``None`` while empty).  Deletes do not shrink it —
        # it is a *conservative* hull, exactly what engine-level shard
        # pruning needs: a query missing the box can match no pending row.
        self._box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Tuple[str, ...]:
        """Attribute names of the buffered columns."""
        return self._schema

    @property
    def n_pending(self) -> int:
        """Number of buffered records."""
        return self._size

    @property
    def n_pending_primary(self) -> int:
        """Buffered records routed to the (logical) primary index."""
        return int(np.count_nonzero(self._inlier[: self._size]))

    @property
    def n_pending_outlier(self) -> int:
        """Buffered records routed to the (logical) outlier index."""
        return self._size - self.n_pending_primary

    @property
    def capacity(self) -> int:
        """Allocated buffer capacity in rows."""
        return self._capacity

    @property
    def row_ids(self) -> np.ndarray:
        """Assigned row ids of the buffered records (a view, do not mutate)."""
        return self._row_ids[: self._size]

    @property
    def inlier_mask(self) -> np.ndarray:
        """Routing decision per buffered record (a view, do not mutate)."""
        return self._inlier[: self._size]

    @property
    def per_model_inlier_counts(self) -> Dict[str, int]:
        """Per FD model: buffered rows inside its margins (from append time)."""
        return {
            name: int(np.count_nonzero(mask[: self._size]))
            for name, mask in self._model_masks.items()
        }

    @property
    def box(self) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
        """Conservative ``(lows, highs)`` hull of the buffered records.

        Maintained incrementally by :meth:`append_batch` and reset by
        :meth:`clear`; in-place deletes leave it untouched, so it may
        over-cover but never under-cover the live pending rows.  ``None``
        while nothing is buffered.
        """
        return None if self._size == 0 else self._box

    @property
    def model_names(self) -> Tuple[str, ...]:
        """``predictor->dependent`` names of the routed FD models."""
        return self._model_names

    def model_mask(self, name: str) -> np.ndarray:
        """Active prefix of one model's margin mask (a view, do not mutate)."""
        return self._model_masks[name][: self._size]

    def set_groups(self, groups: Sequence[FDGroup]) -> None:
        """Swap in refreshed FD models for future routing decisions.

        The model set must be unchanged (same ``predictor->dependent``
        names) so the recorded per-model masks keep their meaning; only
        the model parameters (slope, intercept, margins) may differ.
        Masks already recorded stay as appended — routing a record by
        stale (narrower) margins is conservative: it lands in the outlier
        index, where every query finds it without any model.
        """
        names = tuple(
            f"{group.predictor}->{dependent}"
            for group in groups
            for dependent in group.dependents
        )
        if names != self._model_names:
            raise ValueError(
                f"refreshed groups define models {list(names)}, "
                f"expected {list(self._model_names)}"
            )
        self._groups = tuple(groups)

    def column(self, name: str) -> np.ndarray:
        """Active prefix of one buffered column (a view, do not mutate)."""
        return self._buffers[name][: self._size]

    def columns(self) -> Dict[str, np.ndarray]:
        """Active prefixes of all buffered columns."""
        return {name: self.column(name) for name in self._schema}

    def nbytes(self) -> int:
        """Bytes allocated by the buffers (including growth headroom)."""
        per_row = len(self._schema) * 8 + 8 + 1 + len(self._model_names)
        return int(self._capacity * per_row)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaStore(n_pending={self._size}, capacity={self._capacity}, "
            f"columns={list(self._schema)})"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        """Grow the buffers geometrically until ``extra`` more rows fit."""
        needed = self._size + extra
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity = int(capacity * GROWTH_FACTOR) + 1
        for name in self._schema:
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._size] = self._buffers[name][: self._size]
            self._buffers[name] = grown
        grown_ids = np.empty(capacity, dtype=np.int64)
        grown_ids[: self._size] = self._row_ids[: self._size]
        self._row_ids = grown_ids
        grown_inlier = np.empty(capacity, dtype=bool)
        grown_inlier[: self._size] = self._inlier[: self._size]
        self._inlier = grown_inlier
        for name in self._model_names:
            grown_mask = np.empty(capacity, dtype=bool)
            grown_mask[: self._size] = self._model_masks[name][: self._size]
            self._model_masks[name] = grown_mask
        self._capacity = capacity

    def append_batch(
        self,
        columns: Mapping[str, np.ndarray],
        row_ids: np.ndarray,
        *,
        inlier_mask: Optional[np.ndarray] = None,
        model_masks: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Append a coerced batch, routing it against the learned models.

        ``columns`` must already be schema-complete float64 arrays (see
        :func:`coerce_batch`).  Returns the inlier mask of the batch.  When
        both ``inlier_mask`` and ``model_masks`` are given (a persistence
        restore) the stored routing is trusted verbatim and **no model is
        evaluated at all** — restore cost is a buffer copy, not
        O(pending x models) — and the restored per-model masks keep
        post-load compaction's weighted means identical to insert-time
        truth.  An ``inlier_mask`` without ``model_masks`` (a legacy
        format-v2 archive) still re-derives the per-model masks.
        """
        n_new = len(row_ids)
        if n_new == 0:
            return np.empty(0, dtype=bool)
        if model_masks is None:
            model_masks = per_model_inlier_masks(self._groups, columns)
        if inlier_mask is None:
            inlier_mask = np.ones(n_new, dtype=bool)
            for mask in model_masks.values():
                inlier_mask &= mask
        else:
            inlier_mask = np.asarray(inlier_mask, dtype=bool)
        self._reserve(n_new)
        start, stop = self._size, self._size + n_new
        for name in self._schema:
            self._buffers[name][start:stop] = columns[name]
        self._row_ids[start:stop] = np.asarray(row_ids, dtype=np.int64)
        self._inlier[start:stop] = inlier_mask
        for name in self._model_names:
            self._model_masks[name][start:stop] = np.asarray(
                model_masks[name], dtype=bool
            )
        self._size = stop
        if self._box is None:
            batch_hull = {name: _column_hull(columns[name]) for name in self._schema}
            self._box = (
                {name: hull[0] for name, hull in batch_hull.items()},
                {name: hull[1] for name, hull in batch_hull.items()},
            )
        else:
            lows, highs = self._box
            for name in self._schema:
                low, high = _column_hull(columns[name])
                lows[name] = min(lows[name], low)
                highs[name] = max(highs[name], high)
        return inlier_mask

    def delete_rows(self, row_ids: np.ndarray) -> int:
        """Remove buffered records by assigned row id, compacting in place.

        The surviving rows are copied down over the deleted slots in one
        vectorised pass per buffer (row ids, inlier routing, per-model
        masks and every column move together), so the routing bookkeeping
        is decremented exactly — no model is re-evaluated.  Ids not in the
        buffer are ignored.  Returns the number of records removed.
        """
        if self._size == 0:
            return 0
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return 0
        doomed = np.isin(self._row_ids[: self._size], row_ids)
        n_deleted = int(np.count_nonzero(doomed))
        if n_deleted == 0:
            return 0
        keep = ~doomed
        new_size = self._size - n_deleted
        for name in self._schema:
            buffer = self._buffers[name]
            buffer[:new_size] = buffer[: self._size][keep]
        self._row_ids[:new_size] = self._row_ids[: self._size][keep]
        self._inlier[:new_size] = self._inlier[: self._size][keep]
        for name in self._model_names:
            mask = self._model_masks[name]
            mask[:new_size] = mask[: self._size][keep]
        self._size = new_size
        if new_size == 0:
            # A drained buffer must drop its hull: the next append would
            # otherwise union into the stale box and keep it permanently
            # inflated, silently degrading engine-level shard pruning.
            self._box = None
        return n_deleted

    def clear(self) -> None:
        """Drop every buffered record (capacity is kept for reuse)."""
        self._size = 0
        self._box = None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def scan(self, query: Rectangle) -> np.ndarray:
        """Row ids of buffered records matching ``query`` (sorted).

        One vectorised interval check per constrained attribute over the
        active buffer prefix — the delta-side analogue of the full-scan
        baseline, but only over the (small) pending set.
        """
        if self._size == 0 or query.is_empty:
            return np.empty(0, dtype=np.int64)
        mask = query.matches(self.columns())
        return np.sort(self._row_ids[: self._size][mask])

    #: Queries checked per broadcast block in :meth:`scan_batch`, bounding
    #: the (block x pending) mask matrix to a few MB however large the batch.
    SCAN_BATCH_BLOCK = 256

    def scan_batch(self, queries: Sequence[Rectangle]) -> List[np.ndarray]:
        """Row ids of buffered records matching each query of a batch.

        The whole batch is answered with one pass over the buffer: per
        attribute constrained by *any* query the column prefix is gathered
        once and compared against the per-query bound vectors by
        broadcasting, instead of re-reading every column for every query.
        Results are positionally aligned with ``queries`` and identical to
        ``[scan(q) for q in queries]``.
        """
        queries = list(queries)
        results: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(len(queries))
        ]
        if self._size == 0 or not queries:
            return results
        live = [i for i, query in enumerate(queries) if not query.is_empty]
        if not live:
            return results
        dims = sorted({dim for i in live for dim in queries[i].constrained_dims})
        row_ids = self._row_ids[: self._size]
        for block_start in range(0, len(live), self.SCAN_BATCH_BLOCK):
            block = live[block_start : block_start + self.SCAN_BATCH_BLOCK]
            mask = np.ones((len(block), self._size), dtype=bool)
            for dim in dims:
                lows = np.array([queries[i].interval(dim).low for i in block])
                highs = np.array([queries[i].interval(dim).high for i in block])
                values = self._buffers[dim][: self._size]
                mask &= (values >= lows[:, None]) & (values <= highs[:, None])
            for row, i in enumerate(block):
                results[i] = np.sort(row_ids[mask[row]])
        return results

    def fold_aggregate_batch(
        self,
        queries: Sequence[Rectangle],
        spec: Aggregate,
        partial: AggregatePartial,
    ) -> None:
        """Fold buffered rows matching each query into ``partial`` in place.

        The executor-aware sibling of :meth:`scan_batch`: the same blocked
        broadcast match, but the matching rows are folded straight into the
        caller's per-query accumulators — their row ids are never gathered,
        keeping the aggregate path materialization-free end to end.
        ``partial`` must have one slot per query.
        """
        if self._size == 0 or not queries:
            return
        queries = list(queries)
        live = [i for i, query in enumerate(queries) if not query.is_empty]
        if not live:
            return
        dims = sorted({dim for i in live for dim in queries[i].constrained_dims})
        values = self._buffers[spec.column][: self._size] if spec.column else None
        for block_start in range(0, len(live), self.SCAN_BATCH_BLOCK):
            block = live[block_start : block_start + self.SCAN_BATCH_BLOCK]
            mask = np.ones((len(block), self._size), dtype=bool)
            for dim in dims:
                lows = np.array([queries[i].interval(dim).low for i in block])
                highs = np.array([queries[i].interval(dim).high for i in block])
                column = self._buffers[dim][: self._size]
                mask &= (column >= lows[:, None]) & (column <= highs[:, None])
            block_rows, pending_rows = np.nonzero(mask)
            if len(block_rows) == 0:
                continue
            qids = np.asarray(block, dtype=np.int64)[block_rows]
            partial.fold_values(qids, None if values is None else values[pending_rows])

    def knn_candidates(
        self, point: Mapping[str, float], k: int, metric: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(distance key, row id)`` candidates among the pending rows.

        Mergeable with the main-structure candidates via
        :func:`repro.data.executors.merge_topk` (pending row ids are
        disjoint from compacted ones by construction).
        """
        if self._size == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = point_distances(self.columns(), None, point, metric)
        return select_topk(keys, self._row_ids[: self._size], k)

    def topk_candidates(
        self, query: Rectangle, spec: TopK
    ) -> Tuple[np.ndarray, np.ndarray]:
        """By-column top-k candidates among pending rows matching ``query``."""
        if self._size == 0 or query.is_empty:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        mask = query.matches(self.columns())
        if not mask.any():
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        keys = self._buffers[spec.column][: self._size][mask].astype(np.float64)
        ids = self._row_ids[: self._size][mask]
        return select_topk(keys, ids, spec.k, largest=spec.largest)

    def pending_table(self) -> Optional[Table]:
        """The buffered records as a :class:`Table` (``None`` when empty)."""
        if self._size == 0:
            return None
        return Table({name: self.column(name).copy() for name in self._schema})

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, np.ndarray]:
        """Copies of the active buffer state, keyed for an ``.npz`` archive."""
        payload = {f"column::{name}": self.column(name).copy() for name in self._schema}
        payload["__row_ids__"] = self.row_ids.copy()
        payload["__inlier__"] = self.inlier_mask.copy()
        for name in self._model_names:
            payload[f"model::{name}"] = self.model_mask(name).copy()
        return payload

    def load_state(self, payload: Mapping[str, np.ndarray]) -> None:
        """Inverse of :meth:`state`; replaces the current buffer contents.

        The stored routing mask is trusted as-is.  When the payload also
        carries the per-model masks (format v3 state) they are restored
        verbatim and no FD model is evaluated; older payloads without them
        fall back to one re-derivation pass.
        """
        row_ids = np.asarray(payload["__row_ids__"], dtype=np.int64)
        inlier = np.asarray(payload["__inlier__"], dtype=bool)
        columns = {
            # repro-lint: allow[materialize] the delta store is the heap-owned mutable side by design, bounded by the compaction trigger; restore normalizes dtype once
            name: np.asarray(payload[f"column::{name}"], dtype=np.float64)
            for name in self._schema
        }
        model_masks: Optional[Dict[str, np.ndarray]] = {
            name: np.asarray(payload[f"model::{name}"], dtype=bool)
            for name in self._model_names
            if f"model::{name}" in payload
        }
        if len(model_masks) != len(self._model_names):
            model_masks = None
        self.clear()
        self.append_batch(columns, row_ids, inlier_mask=inlier, model_masks=model_masks)
