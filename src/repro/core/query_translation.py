"""Query translation (Section 4).

A query constraint on a dependent attribute ``C_d`` cannot be answered by
the primary index directly (the attribute is not indexed there), but for
records *inside the margins* the constraint implies a constraint on the
predictor attribute ``C_x``: all inliers satisfy
``psi_hat(p_x) - eps_LB <= p_d <= psi_hat(p_x) + eps_UB`` (Equation 1), so a
query range on ``C_d`` maps through the inverse of ``psi_hat`` (widened by
the margins) into a range on ``C_x``.  The final constraint on ``C_x`` is
the intersection of the directly-specified range and every translated range
(Equation 2, Figure 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.predicates import Interval, Rectangle
from repro.fd.groups import FDGroup

__all__ = ["translated_predictor_interval", "translate_query"]


def translated_predictor_interval(query: Rectangle, group: FDGroup) -> Interval:
    """The effective constraint on the group's predictor implied by ``query``.

    Combines the direct constraint on the predictor (if any) with the
    translation of every constrained dependent attribute of the group,
    exactly the ``max``/``min`` intersection of Equation 2.  The result may
    be empty, which means no *inlier* record can satisfy the query (outliers
    may still match and are handled by the outlier index).
    """
    effective = query.interval(group.predictor)
    for dependent in group.dependents:
        if not query.constrains(dependent):
            continue
        model = group.model_for(dependent)
        translated = model.predictor_interval(query.interval(dependent))
        effective = effective.intersect(translated)
    return effective


def translate_query(query: Rectangle, groups: Sequence[FDGroup]) -> Rectangle:
    """Rewrite ``query`` for the primary index.

    For every FD group, constraints on dependent attributes are translated
    into (tightened) constraints on the group predictor; constraints on
    attributes outside any group are passed through unchanged.  Constraints
    on the dependent attributes themselves are *kept* in the rewritten query:
    the primary index uses them only in its exact post-filtering step, which
    keeps results exact without requiring the dependents to be indexed.
    """
    rewritten = query
    for group in groups:
        effective = translated_predictor_interval(query, group)
        rewritten = rewritten.with_interval(group.predictor, effective)
    return rewritten


def dependent_attributes(groups: Iterable[FDGroup]) -> set:
    """Set of all attributes predicted (rather than indexed) by the groups."""
    dependents: set = set()
    for group in groups:
        dependents.update(group.dependents)
    return dependents
