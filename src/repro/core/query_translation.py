"""Query translation (Section 4).

A query constraint on a dependent attribute ``C_d`` cannot be answered by
the primary index directly (the attribute is not indexed there), but for
records *inside the margins* the constraint implies a constraint on the
predictor attribute ``C_x``: all inliers satisfy
``psi_hat(p_x) - eps_LB <= p_d <= psi_hat(p_x) + eps_UB`` (Equation 1), so a
query range on ``C_d`` maps through the inverse of ``psi_hat`` (widened by
the margins) into a range on ``C_x``.  The final constraint on ``C_x`` is
the intersection of the directly-specified range and every translated range
(Equation 2, Figure 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.data.predicates import Interval, Rectangle, batch_bounds
from repro.fd.groups import FDGroup

__all__ = [
    "translated_predictor_interval",
    "translate_query",
    "translated_predictor_intervals_batch",
    "translate_bounds_batch",
    "translate_query_batch",
    "rewritten_queries_from_bounds",
]

#: Per-attribute ``(lows, highs)`` bound arrays of a query batch — the
#: columnar query form produced by :func:`repro.data.predicates.batch_bounds`.
BoundsMap = Mapping[str, Tuple[np.ndarray, np.ndarray]]


def translated_predictor_interval(query: Rectangle, group: FDGroup) -> Interval:
    """The effective constraint on the group's predictor implied by ``query``.

    Combines the direct constraint on the predictor (if any) with the
    translation of every constrained dependent attribute of the group,
    exactly the ``max``/``min`` intersection of Equation 2.  The result may
    be empty, which means no *inlier* record can satisfy the query (outliers
    may still match and are handled by the outlier index).
    """
    effective = query.interval(group.predictor)
    for dependent in group.dependents:
        if not query.constrains(dependent):
            continue
        model = group.model_for(dependent)
        translated = model.predictor_interval(query.interval(dependent))
        effective = effective.intersect(translated)
    return effective


def translate_query(query: Rectangle, groups: Sequence[FDGroup]) -> Rectangle:
    """Rewrite ``query`` for the primary index.

    For every FD group, constraints on dependent attributes are translated
    into (tightened) constraints on the group predictor; constraints on
    attributes outside any group are passed through unchanged.  Constraints
    on the dependent attributes themselves are *kept* in the rewritten query:
    the primary index uses them only in its exact post-filtering step, which
    keeps results exact without requiring the dependents to be indexed.
    """
    rewritten = query
    for group in groups:
        effective = translated_predictor_interval(query, group)
        rewritten = rewritten.with_interval(group.predictor, effective)
    return rewritten


def _group_effective_bounds(
    bounds: BoundsMap, n_queries: int, group: FDGroup
) -> Tuple[np.ndarray, np.ndarray]:
    """Effective predictor bound arrays of one group over a query batch.

    The Equation 2 intersection as pure array arithmetic: starting from the
    direct predictor bounds, each dependent's constraint is pushed through
    the (batch-vectorized) inverse model and folded in with one
    ``maximum``/``minimum`` pair.  Unconstrained slots are ``+-inf`` and
    translate to ``+-inf``, so no per-query constrained check is needed.
    """
    if group.predictor in bounds:
        direct_lows, direct_highs = bounds[group.predictor]
        lows = direct_lows.copy()  # repro-lint: allow[materialize] per-batch bound arrays, O(queries) not O(rows)
        highs = direct_highs.copy()  # repro-lint: allow[materialize] per-batch bound arrays, O(queries) not O(rows)
    else:
        lows = np.full(n_queries, -np.inf)
        highs = np.full(n_queries, np.inf)
    for dependent in group.dependents:
        if dependent not in bounds:
            continue
        dep_lows, dep_highs = bounds[dependent]
        model = group.model_for(dependent)
        if hasattr(model, "predictor_intervals"):
            translated_lows, translated_highs = model.predictor_intervals(dep_lows, dep_highs)
        else:
            # Models without a batch kernel (e.g. splines) fall back to the
            # scalar translation for the queries that constrain the
            # dependent; the rest stay unbounded (a no-op in the fold).
            translated_lows = np.full(n_queries, -np.inf)
            translated_highs = np.full(n_queries, np.inf)
            constrained = np.flatnonzero((dep_lows > -np.inf) | (dep_highs < np.inf))
            for i in constrained:
                interval = model.predictor_interval(Interval(dep_lows[i], dep_highs[i]))
                translated_lows[i] = interval.low
                translated_highs[i] = interval.high
        lows = np.maximum(lows, translated_lows)
        highs = np.minimum(highs, translated_highs)
    return lows, highs


def translated_predictor_intervals_batch(
    queries: Sequence[Rectangle], group: FDGroup
) -> Tuple[np.ndarray, np.ndarray]:
    """Effective predictor bounds of one group for a whole query batch.

    The vectorized counterpart of :func:`translated_predictor_interval`:
    the margin/inverse-model evaluation runs once over bound arrays
    covering every query instead of once per query.  Returns parallel
    ``(lows, highs)`` arrays; ``lows[i] > highs[i]`` means no inlier can
    match query ``i``.
    """
    queries = list(queries)
    return _group_effective_bounds(batch_bounds(queries), len(queries), group)


def translate_bounds_batch(
    bounds: BoundsMap, n_queries: int, groups: Sequence[FDGroup]
) -> Tuple[Dict[str, Tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Rewrite a columnar query batch for the primary index.

    The array-level core of batch translation: returns a new bounds map in
    which every group predictor carries its effective (translated)
    interval, plus a boolean mask of queries for which some group's
    effective constraint is empty — the planner's "no inlier can match"
    condition.  Bound values are identical to running
    :func:`translate_query` per query.
    """
    translated: Dict[str, Tuple[np.ndarray, np.ndarray]] = dict(bounds)
    no_inlier = np.zeros(n_queries, dtype=bool)
    for group in groups:
        lows, highs = _group_effective_bounds(bounds, n_queries, group)
        no_inlier |= lows > highs
        translated[group.predictor] = (lows, highs)
    return translated, no_inlier


def rewritten_queries_from_bounds(
    queries: Sequence[Rectangle],
    translated_bounds: BoundsMap,
    groups: Sequence[FDGroup],
) -> List[Rectangle]:
    """Materialise translated rectangles from already-translated bounds.

    The rectangle-assembly half of batch translation, split out so callers
    that already hold the :func:`translate_bounds_batch` output (the batch
    planner) do not translate a second time.
    """
    rewritten = list(queries)
    for group in groups:
        lows, highs = translated_bounds[group.predictor]
        for i in range(len(rewritten)):
            rewritten[i] = rewritten[i].with_interval(
                group.predictor, Interval(float(lows[i]), float(highs[i]))
            )
    return rewritten


def translate_query_batch(
    queries: Sequence[Rectangle], groups: Sequence[FDGroup]
) -> Tuple[List[Rectangle], np.ndarray]:
    """Rewrite a whole batch of queries for the primary index at once.

    Returns the rewritten rectangles (positionally aligned with
    ``queries``) plus the "no inlier can match" mask of
    :func:`translate_bounds_batch`.  Results are identical to calling
    :func:`translate_query` / :func:`translated_predictor_interval` per
    query; the batch form exists so margin evaluation is vectorized across
    the batch instead of re-dispatched per query.
    """
    queries = list(queries)
    translated_bounds, no_inlier = translate_bounds_batch(
        batch_bounds(queries), len(queries), groups
    )
    return rewritten_queries_from_bounds(queries, translated_bounds, groups), no_inlier


def dependent_attributes(groups: Iterable[FDGroup]) -> set:
    """Set of all attributes predicted (rather than indexed) by the groups."""
    dependents: set = set()
    for group in groups:
        dependents.update(group.dependents)
    return dependents
