"""Query planning: which sub-indexes does a query need to touch?

Section 8.2.3: "We can check whether the query intersects with the primary,
the outlier, or both indexes; and run it against the appropriate indexes."
The planner performs exactly that pruning:

* the primary index can be skipped when the translated predictor constraint
  of some FD group is empty (no inlier can match) or when the query
  rectangle misses the bounding box of the inlier set;
* the outlier index can be skipped when it is empty or the query misses the
  bounding box of the outlier set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle
from repro.data.table import Table
from repro.core.query_translation import translate_query, translated_predictor_interval
from repro.fd.groups import FDGroup

__all__ = ["QueryPlan", "plan_query", "bounding_box_of_rows", "merge_boxes"]


@dataclass(frozen=True)
class QueryPlan:
    """Planning decision for one query."""

    #: Query to run against the primary index (already translated).
    primary_query: Rectangle
    #: Query to run against the outlier index (the original query).
    outlier_query: Rectangle
    use_primary: bool
    use_outlier: bool
    #: Why each sub-index was skipped (empty when it is used).
    skip_reasons: Dict[str, str]


def bounding_box_of_rows(
    table: Table, row_ids: np.ndarray
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """(mins, maxs) per attribute over the given rows, or ``None`` if empty."""
    if len(row_ids) == 0:
        return None
    lows: Dict[str, float] = {}
    highs: Dict[str, float] = {}
    for name in table.schema:
        values = table.column(name)[row_ids]
        lows[name] = float(values.min())
        highs[name] = float(values.max())
    return lows, highs


def merge_boxes(
    left: Optional[Tuple[Dict[str, float], Dict[str, float]]],
    right: Optional[Tuple[Dict[str, float], Dict[str, float]]],
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """Smallest box containing both operands (``None`` means an empty set).

    Used by incremental compaction: the box of the combined row set is the
    hull of the old box and the box of the absorbed batch, so no O(n)
    rescan of the main data is needed.
    """
    if left is None:
        return right
    if right is None:
        return left
    lows = {name: min(left[0][name], right[0][name]) for name in left[0]}
    highs = {name: max(left[1][name], right[1][name]) for name in left[1]}
    return lows, highs


def plan_query(
    query: Rectangle,
    groups: Sequence[FDGroup],
    *,
    primary_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
    outlier_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
) -> QueryPlan:
    """Build the query plan for one rectangle.

    ``primary_box`` and ``outlier_box`` are the bounding boxes of the two row
    sets (``None`` means the corresponding set is empty).
    """
    skip_reasons: Dict[str, str] = {}

    translated = translate_query(query, groups)
    use_primary = True
    if primary_box is None:
        use_primary = False
        skip_reasons["primary"] = "primary index is empty"
    elif translated.is_empty or any(
        translated_predictor_interval(query, group).is_empty for group in groups
    ):
        use_primary = False
        skip_reasons["primary"] = "translated constraint is empty (no inlier can match)"
    elif not translated.overlaps_box(primary_box[0], primary_box[1]):
        use_primary = False
        skip_reasons["primary"] = "query misses the primary bounding box"

    use_outlier = True
    if outlier_box is None:
        use_outlier = False
        skip_reasons["outlier"] = "outlier index is empty"
    elif query.is_empty:
        use_outlier = False
        skip_reasons["outlier"] = "query is empty"
    elif not query.overlaps_box(outlier_box[0], outlier_box[1]):
        use_outlier = False
        skip_reasons["outlier"] = "query misses the outlier bounding box"

    return QueryPlan(
        primary_query=translated,
        outlier_query=query,
        use_primary=use_primary,
        use_outlier=use_outlier,
        skip_reasons=skip_reasons,
    )
