"""Query planning: which sub-indexes does a query need to touch?

Section 8.2.3: "We can check whether the query intersects with the primary,
the outlier, or both indexes; and run it against the appropriate indexes."
The planner performs exactly that pruning:

* the primary index can be skipped when the translated predictor constraint
  of some FD group is empty (no inlier can match) or when the query
  rectangle misses the bounding box of the inlier set;
* the outlier index can be skipped when it is empty or the query misses the
  bounding box of the outlier set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.predicates import Rectangle, batch_bounds
from repro.data.table import Table
from repro.core.query_translation import (
    BoundsMap,
    rewritten_queries_from_bounds,
    translate_bounds_batch,
    translate_query,
    translated_predictor_interval,
)
from repro.fd.groups import FDGroup

__all__ = [
    "QueryPlan",
    "plan_query",
    "plan_queries",
    "plan_query_flags",
    "batch_overlaps_box",
    "bounding_box_of_rows",
    "merge_boxes",
]


@dataclass(frozen=True)
class QueryPlan:
    """Planning decision for one query."""

    #: Query to run against the primary index (already translated).
    primary_query: Rectangle
    #: Query to run against the outlier index (the original query).
    outlier_query: Rectangle
    use_primary: bool
    use_outlier: bool
    #: Why each sub-index was skipped (empty when it is used).
    skip_reasons: Dict[str, str]


def bounding_box_of_rows(
    table: Table, row_ids: np.ndarray
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """(mins, maxs) per attribute over the given rows, or ``None`` if empty."""
    if len(row_ids) == 0:
        return None
    lows: Dict[str, float] = {}
    highs: Dict[str, float] = {}
    for name in table.schema:
        values = table.column(name)[row_ids]
        lows[name] = float(values.min())
        highs[name] = float(values.max())
    return lows, highs


def merge_boxes(
    left: Optional[Tuple[Dict[str, float], Dict[str, float]]],
    right: Optional[Tuple[Dict[str, float], Dict[str, float]]],
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """Smallest box containing both operands (``None`` means an empty set).

    Used by incremental compaction: the box of the combined row set is the
    hull of the old box and the box of the absorbed batch, so no O(n)
    rescan of the main data is needed.
    """
    if left is None:
        return right
    if right is None:
        return left
    lows = {name: min(left[0][name], right[0][name]) for name in left[0]}
    highs = {name: max(left[1][name], right[1][name]) for name in left[1]}
    return lows, highs


def plan_query(
    query: Rectangle,
    groups: Sequence[FDGroup],
    *,
    primary_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
    outlier_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
) -> QueryPlan:
    """Build the query plan for one rectangle.

    ``primary_box`` and ``outlier_box`` are the bounding boxes of the two row
    sets (``None`` means the corresponding set is empty).
    """
    skip_reasons: Dict[str, str] = {}

    translated = translate_query(query, groups)
    use_primary = True
    if primary_box is None:
        use_primary = False
        skip_reasons["primary"] = "primary index is empty"
    elif translated.is_empty or any(
        translated_predictor_interval(query, group).is_empty for group in groups
    ):
        use_primary = False
        skip_reasons["primary"] = "translated constraint is empty (no inlier can match)"
    elif not translated.overlaps_box(primary_box[0], primary_box[1]):
        use_primary = False
        skip_reasons["primary"] = "query misses the primary bounding box"

    use_outlier = True
    if outlier_box is None:
        use_outlier = False
        skip_reasons["outlier"] = "outlier index is empty"
    elif query.is_empty:
        use_outlier = False
        skip_reasons["outlier"] = "query is empty"
    elif not query.overlaps_box(outlier_box[0], outlier_box[1]):
        use_outlier = False
        skip_reasons["outlier"] = "query misses the outlier bounding box"

    return QueryPlan(
        primary_query=translated,
        outlier_query=query,
        use_primary=use_primary,
        use_outlier=use_outlier,
        skip_reasons=skip_reasons,
    )


def _batch_empty(bounds: BoundsMap, n_queries: int) -> np.ndarray:
    """Mask of queries with some empty constraint in a columnar batch."""
    empty = np.zeros(n_queries, dtype=bool)
    for lows, highs in bounds.values():
        empty |= lows > highs
    return empty


def _batch_misses_box(
    bounds: BoundsMap,
    n_queries: int,
    box: Tuple[Dict[str, float], Dict[str, float]],
) -> np.ndarray:
    """Mask of queries whose rectangle misses an axis-aligned bounding box."""
    misses = np.zeros(n_queries, dtype=bool)
    box_lows, box_highs = box
    for dim, (lows, highs) in bounds.items():
        if dim not in box_lows:
            continue
        misses |= (highs < box_lows[dim]) | (lows > box_highs[dim])
    return misses


def batch_overlaps_box(
    bounds: BoundsMap,
    n_queries: int,
    box: Optional[Tuple[Dict[str, float], Dict[str, float]]],
) -> np.ndarray:
    """Mask of queries whose rectangle intersects an axis-aligned box.

    The vectorized counterpart of :meth:`Rectangle.overlaps_box` over a
    columnar query batch, shared by the sharded engine's per-shard pruning.
    A ``None`` box (an empty row set) overlaps nothing.  NaN box bounds
    (dead slots in a partially reclaimed shard) compare as overlapping, so
    pruning stays conservative.
    """
    if box is None:
        return np.zeros(n_queries, dtype=bool)
    return ~_batch_misses_box(bounds, n_queries, box)


def plan_query_flags(
    bounds: BoundsMap,
    translated_bounds: BoundsMap,
    no_inlier: np.ndarray,
    n_queries: int,
    *,
    primary_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
    outlier_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized sub-index routing for a columnar query batch.

    ``bounds`` / ``translated_bounds`` are the original and translated
    per-attribute bound matrices (see
    :func:`repro.core.query_translation.translate_bounds_batch`, which also
    produces ``no_inlier``).  Returns ``(use_primary, use_outlier)`` masks,
    decision-identical to :func:`plan_query` per query — the same empty /
    no-inlier / bounding-box pruning evaluated as whole-batch array ops.
    """
    if primary_box is None:
        use_primary = np.zeros(n_queries, dtype=bool)
    else:
        use_primary = ~(
            _batch_empty(translated_bounds, n_queries)
            | np.asarray(no_inlier, dtype=bool)
            | _batch_misses_box(translated_bounds, n_queries, primary_box)
        )
    if outlier_box is None:
        use_outlier = np.zeros(n_queries, dtype=bool)
    else:
        use_outlier = ~(
            _batch_empty(bounds, n_queries)
            | _batch_misses_box(bounds, n_queries, outlier_box)
        )
    return use_primary, use_outlier


def plan_queries(
    queries: Sequence[Rectangle],
    groups: Sequence[FDGroup],
    *,
    primary_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
    outlier_box: Optional[Tuple[Dict[str, float], Dict[str, float]]] = None,
) -> List[QueryPlan]:
    """Plans for a whole batch of queries, translated in one vectorized pass.

    The rectangle-level convenience wrapper over the array-level batch
    machinery COAX uses directly: translation through
    :func:`translate_query_batch` / :func:`translate_bounds_batch` and
    routing through :func:`plan_query_flags`, plus the per-query skip
    reasons of :func:`plan_query`.  Decision-identical to
    ``[plan_query(q, groups, ...) for q in queries]`` (guarded by the
    planner tests).
    """
    queries = list(queries)
    n_queries = len(queries)
    bounds = batch_bounds(queries)
    translated_bounds, no_inlier = translate_bounds_batch(bounds, n_queries, groups)
    translated_queries = rewritten_queries_from_bounds(
        queries, translated_bounds, groups
    )
    use_primary, use_outlier = plan_query_flags(
        bounds,
        translated_bounds,
        no_inlier,
        n_queries,
        primary_box=primary_box,
        outlier_box=outlier_box,
    )
    plans: List[QueryPlan] = []
    for i, (query, translated) in enumerate(zip(queries, translated_queries)):
        skip_reasons: Dict[str, str] = {}
        if not use_primary[i]:
            if primary_box is None:
                skip_reasons["primary"] = "primary index is empty"
            elif translated.is_empty or no_inlier[i]:
                skip_reasons["primary"] = (
                    "translated constraint is empty (no inlier can match)"
                )
            else:
                skip_reasons["primary"] = "query misses the primary bounding box"
        if not use_outlier[i]:
            if outlier_box is None:
                skip_reasons["outlier"] = "outlier index is empty"
            elif query.is_empty:
                skip_reasons["outlier"] = "query is empty"
            else:
                skip_reasons["outlier"] = "query misses the outlier bounding box"
        plans.append(
            QueryPlan(
                primary_query=translated,
                outlier_query=query,
                use_primary=bool(use_primary[i]),
                use_outlier=bool(use_outlier[i]),
                skip_reasons=skip_reasons,
            )
        )
    return plans
