"""Workload-adaptive shard layout: sketch, skew detection, cost model.

The sharded engine's win over a flat COAX index is shard pruning, and
pruning quality is decided by where the range-partition boundaries sit
relative to the *query* distribution — not the data distribution the
build-time quantiles balance.  Tsunami and Flood (see PAPERS.md) learn
their layout from the observed workload for exactly this reason.  This
module closes that loop for :class:`~repro.core.engine.ShardedCOAX`:

* :class:`LayoutMonitor` accumulates a bounded ring-buffer sketch of
  recent query intervals on the partition dimension plus per-shard
  hit / prune / rows-examined counters, fed from the engine's scatter
  paths (a few array writes per batch, under the monitor's own lock —
  never inside the engine's stats lock).
* :meth:`LayoutMonitor.propose` is pure: it builds a query-mass
  histogram over the observed domain and generates boundary candidates
  per shard count from two families — weighted quantiles of the
  query×row mass (boundaries concentrate where queried data lives) and
  a dynamic program over the histogram edges that can additionally
  *fence* unqueried cold regions into dedicated shards.  Old and
  candidate boundaries are scored with an exact cost model — rows
  resident in the shards each sketched query would be dispatched to,
  via prefix sums over the sorted partition-key values — and a proposal
  is returned only when the predicted cost drops by the configured
  hysteresis factor.
* The engine adopts a proposal at full compaction through its
  transactional rebuild (see ``ShardedCOAX._rebuild_layout``) and then
  calls :meth:`LayoutMonitor.note_adopted`, which advances the layout
  epoch, records the boundary history and resets the sketch so the next
  decision reflects only the post-adoption workload.

Concurrency: the monitor is a leaf structure with its own write lock;
mutation entry points (``observe`` / ``note_adopted`` / ``reset`` /
``load_state``) take it first, and readers snapshot under it.  The
engine registers these entry points with repro-lint's lock-discipline
pass, and ``note_adopted`` with the generation-bump pass: adopting a
layout replaces every shard's contents, so the spill generations must
be bumped before the engine lock is released.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.config import LayoutConfig

__all__ = ["LayoutMonitor", "LayoutProposal"]


@dataclass(frozen=True)
class LayoutProposal:
    """One accepted re-partitioning proposal (immutable).

    ``old_cost`` / ``new_cost`` are the cost model's totals — rows
    resident in the shards each sketched query would visit — under the
    current and the proposed boundaries respectively; ``n_queries`` is
    the sketch size the decision was taken on.
    """

    boundaries: Tuple[float, ...]
    n_shards: int
    old_cost: float
    new_cost: float
    n_queries: int

    @property
    def gain(self) -> float:
        """Predicted cost ratio ``old / new`` (``inf`` when new is free)."""
        if self.new_cost <= 0.0:
            return float("inf") if self.old_cost > 0.0 else 1.0
        return self.old_cost / self.new_cost


def _workload_cost(
    values: np.ndarray, boundaries: np.ndarray, lows: np.ndarray, highs: np.ndarray
) -> float:
    """Total rows resident in the shards each query would be dispatched to.

    ``values`` must be sorted ascending (the live partition-key values);
    ``boundaries`` are the ``k - 1`` range boundaries under evaluation.
    Dispatch mirrors ``ShardedCOAX._route``: shard ``j`` covers
    ``[B[j-1], B[j])``, and a query ``[l, h]`` reaches shards
    ``searchsorted(B, l, right) .. searchsorted(B, h, right)``.  The cost
    is an upper bound of ``rows_examined`` (each dispatched shard scans at
    most its resident rows), which is exactly the quantity shard pruning
    reduces — so comparing layouts on it ranks them by pruning power.
    """
    n = len(values)
    cum = np.concatenate(
        [[0], np.searchsorted(values, boundaries, side="left"), [n]]
    )
    first = np.searchsorted(boundaries, lows, side="right")
    last = np.searchsorted(boundaries, highs, side="right")
    return float(np.sum(cum[last + 1] - cum[first]))


def _dp_candidates(
    edges: np.ndarray,
    prefix: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    lo_k: int,
    hi_k: int,
) -> List[Tuple[int, np.ndarray]]:
    """Cost-optimal histogram-edge partitions, one per candidate count.

    The workload cost decomposes per shard — a shard spanning
    ``[edges[m], edges[i])`` contributes ``rows(segment) × queries
    overlapping the segment`` (a query ``[l, h]`` reaches the shard iff
    ``l < edges[i]`` and ``h >= edges[m]``, mirroring ``_route``) — so a
    dynamic program over the ``bins + 1`` edges finds the exact optimum
    among layouts whose boundaries sit on bin edges.  Crucially this
    family can *fence*: a segment no sketched query overlaps costs zero
    regardless of how many rows it holds, so cold data is pushed into a
    dedicated shard the hot queries never visit — a layout the weighted
    quantiles of the query mass cannot express.
    """
    bins = len(prefix) - 1
    lows_sorted = np.sort(lows)
    highs_sorted = np.sort(highs)
    # Per edge e: how many queries have low < e / high < e.
    n_low_before = np.searchsorted(lows_sorted, edges, side="left").astype(np.float64)
    n_high_before = np.searchsorted(highs_sorted, edges, side="left").astype(np.float64)
    rows_at = prefix.astype(np.float64)
    max_k = min(hi_k, bins)
    dp = np.full((max_k + 1, bins + 1), np.inf)
    parent = np.zeros((max_k + 1, bins + 1), dtype=np.int64)
    dp[0, 0] = 0.0
    for j in range(1, max_k + 1):
        for i in range(j, bins + 1):
            segment = (rows_at[i] - rows_at[:i]) * (
                n_low_before[i] - n_high_before[:i]
            )
            totals = dp[j - 1, :i] + segment
            m = int(np.argmin(totals))
            dp[j, i] = totals[m]
            parent[j, i] = m
    out: List[Tuple[int, np.ndarray]] = []
    for k in range(max(lo_k, 1), max_k + 1):
        if not np.isfinite(dp[k, bins]):
            continue
        cuts: List[int] = []
        i = bins
        for j in range(k, 0, -1):
            i = int(parent[j, i])
            if j > 1:
                cuts.append(i)
        boundaries = np.unique(edges[cuts]) if cuts else np.empty(0, dtype=np.float64)
        if len(boundaries) == k - 1:
            out.append((k, boundaries.astype(np.float64)))
    return out


class LayoutMonitor:
    """Bounded workload sketch plus the re-partitioning decision logic.

    One monitor per engine, sized to the engine's shard count.  All state
    lives behind ``_write_lock``; the decision procedure
    (:meth:`propose`) snapshots under the lock and computes outside it,
    so query feeds are never blocked by a cost-model evaluation.
    """

    def __init__(self, config: LayoutConfig, n_shards: int) -> None:
        self._config = config
        self._n_shards = int(n_shards)
        self._write_lock = threading.RLock()
        size = config.sketch_size
        self._sketch_lows = np.zeros(size, dtype=np.float64)
        self._sketch_highs = np.zeros(size, dtype=np.float64)
        self._cursor = 0
        self._count = 0
        #: Queries sketched since the last adoption/reset (not capped by
        #: the ring size — the ``min_queries`` veto compares against it).
        self._observed = 0
        self._hits = np.zeros(self._n_shards, dtype=np.int64)
        self._pruned = np.zeros(self._n_shards, dtype=np.int64)
        self._examined = np.zeros(self._n_shards, dtype=np.int64)
        self._epoch = 0
        self._history: List[Tuple[float, ...]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> LayoutConfig:
        """The layout knobs this monitor decides with."""
        return self._config

    @property
    def epoch(self) -> int:
        """Number of adopted re-partitionings since the engine was built."""
        return self._epoch

    @property
    def observed(self) -> int:
        """Queries sketched since the last adoption (or reset)."""
        return self._observed

    @property
    def history(self) -> Tuple[Tuple[float, ...], ...]:
        """Boundaries of every adopted layout, oldest first."""
        return tuple(self._history)

    def counters(self) -> Dict[str, np.ndarray]:
        """Copies of the per-shard hit / prune / rows-examined counters."""
        with self._write_lock:
            return {
                "hits": self._hits + 0,
                "pruned": self._pruned + 0,
                "rows_examined": self._examined + 0,
            }

    def skew(self) -> Dict[str, float]:
        """Aggregate skew diagnostics of the sketched workload.

        ``prune_fraction`` is the share of (query, shard) pairs pruning
        eliminated; ``hot_shard_fraction`` the hottest shard's share of
        all dispatches.  Both are 0 while nothing was observed.
        """
        with self._write_lock:
            dispatched = int(self._hits.sum())
            considered = dispatched + int(self._pruned.sum())
            return {
                "prune_fraction": (
                    int(self._pruned.sum()) / considered if considered else 0.0
                ),
                "hot_shard_fraction": (
                    int(self._hits.max()) / dispatched if dispatched else 0.0
                ),
                "observed": float(self._observed),
            }

    # ------------------------------------------------------------------
    # Mutation entry points (registered with repro-lint lock-discipline)
    # ------------------------------------------------------------------
    def observe(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        hits: Optional[np.ndarray] = None,
        pruned: Optional[np.ndarray] = None,
        examined: Optional[np.ndarray] = None,
    ) -> None:
        """Sketch one batch of query intervals plus per-shard counters.

        ``lows`` / ``highs`` are the queries' bounds on the partition
        dimension (``±inf`` for unconstrained sides); fully unbounded
        queries carry no layout signal and are skipped.  The optional
        per-shard arrays accumulate into the hit / prune / rows-examined
        counters when their length matches the monitor's shard count.
        """
        with self._write_lock:
            lows = np.atleast_1d(np.asarray(lows, dtype=np.float64))
            highs = np.atleast_1d(np.asarray(highs, dtype=np.float64))
            bounded = np.isfinite(lows) | np.isfinite(highs)
            n_new = int(np.count_nonzero(bounded))
            if n_new:
                size = len(self._sketch_lows)
                slots = (self._cursor + np.arange(n_new)) % size
                self._sketch_lows[slots] = lows[bounded]
                self._sketch_highs[slots] = highs[bounded]
                self._cursor = int((self._cursor + n_new) % size)
                self._count = min(self._count + n_new, size)
                self._observed += n_new
            for counter, update in (
                (self._hits, hits),
                (self._pruned, pruned),
                (self._examined, examined),
            ):
                if update is not None and len(update) == self._n_shards:
                    counter += np.asarray(update, dtype=np.int64)

    def note_adopted(self, proposal: LayoutProposal) -> None:
        """Record an adopted proposal: bump the epoch, reset the sketch.

        The sketch and counters restart empty so the next decision is
        taken on the post-adoption workload only — carrying the old
        sketch over would keep re-proposing the very split just applied.
        """
        with self._write_lock:
            self._epoch += 1
            self._history.append(tuple(float(b) for b in proposal.boundaries))
            self._n_shards = int(proposal.n_shards)
            self._reset_window_locked()

    def reset(self) -> None:
        """Drop the sketch and counters (epoch and history are kept)."""
        with self._write_lock:
            self._reset_window_locked()

    def _reset_window_locked(self) -> None:
        self._cursor = 0
        self._count = 0
        self._observed = 0
        self._hits = np.zeros(self._n_shards, dtype=np.int64)
        self._pruned = np.zeros(self._n_shards, dtype=np.int64)
        self._examined = np.zeros(self._n_shards, dtype=np.int64)

    # ------------------------------------------------------------------
    # Decision procedure (pure: reads a snapshot, mutates nothing)
    # ------------------------------------------------------------------
    def propose(
        self, values: np.ndarray, current_boundaries: np.ndarray
    ) -> Optional[LayoutProposal]:
        """Cost-model verdict on re-partitioning; ``None`` keeps the layout.

        ``values`` are the engine's live partition-key values (any
        order), ``current_boundaries`` the boundaries in effect.  Two
        candidate families are generated per shard count — weighted
        quantiles of the query-mass histogram, and an optimal dynamic
        program over the histogram edges (which can fence an unqueried
        cold region into its own shard, a layout quantiles cannot
        express) — and every candidate is scored with the exact cost
        model.  The proposal is vetoed when: too few queries were
        sketched (``min_queries``), the data domain is degenerate, no
        candidate produces distinct boundaries, or the best candidate's
        predicted cost reduction falls short of ``min_gain``.
        """
        with self._write_lock:
            if self._observed < self._config.min_queries or self._count == 0:
                return None
            lows = self._sketch_lows[: self._count] + 0
            highs = self._sketch_highs[: self._count] + 0
            observed = self._observed
        values = np.sort(np.asarray(values, dtype=np.float64))
        n = len(values)
        if n == 0:
            return None
        vmin, vmax = float(values[0]), float(values[-1])
        if not vmax > vmin:
            return None

        # Query-mass histogram over the data domain: each sketched query
        # adds 1 to every bin it overlaps (difference array + cumsum).
        bins = self._config.histogram_bins
        edges = np.linspace(vmin, vmax, bins + 1)
        lo_clip = np.clip(lows, vmin, vmax)
        hi_clip = np.clip(highs, vmin, vmax)
        start = np.clip(np.searchsorted(edges, lo_clip, side="right") - 1, 0, bins - 1)
        end = np.clip(np.searchsorted(edges, hi_clip, side="right") - 1, 0, bins - 1)
        diff = np.zeros(bins + 1, dtype=np.float64)
        np.add.at(diff, start, 1.0)
        np.add.at(diff, end + 1, -1.0)
        query_mass = np.cumsum(diff[:bins])

        # Weight = query mass × resident rows: a bin is worth splitting
        # in proportion to how much data queries keep pulling from it.
        prefix = np.searchsorted(values, edges, side="left")
        prefix[-1] = n
        rows_per_bin = np.diff(prefix).astype(np.float64)
        weight = query_mass * rows_per_bin
        if weight.sum() <= 0.0:
            weight = query_mass
        if weight.sum() <= 0.0:
            return None
        cum_weight = np.cumsum(weight)

        current_boundaries = np.asarray(current_boundaries, dtype=np.float64)
        current_k = len(current_boundaries) + 1
        old_cost = _workload_cost(values, current_boundaries, lows, highs)
        if old_cost <= 0.0:
            return None

        lo_k = self._config.min_shards
        hi_k = self._config.max_shards if self._config.max_shards else current_k
        hi_k = max(hi_k, lo_k)
        candidates: List[Tuple[int, np.ndarray]] = []
        for k in range(lo_k, hi_k + 1):
            if k == 1:
                candidates.append((1, np.empty(0, dtype=np.float64)))
                continue
            targets = cum_weight[-1] * np.arange(1, k) / k
            slots = np.clip(
                np.searchsorted(cum_weight, targets, side="left"), 0, bins - 1
            )
            quantile = np.unique(edges[slots + 1])
            if len(quantile) == k - 1:
                candidates.append((k, quantile))
            # else: mass too concentrated for k distinct quantile cuts —
            # the DP family below can still produce a k-way candidate.
        candidates.extend(
            _dp_candidates(edges, prefix, lows, highs, lo_k, hi_k)
        )

        best: Optional[Tuple[float, int, np.ndarray]] = None
        for k, candidate in candidates:
            cost = _workload_cost(values, candidate, lows, highs)
            if best is None or cost < best[0]:
                best = (cost, k, candidate)
        if best is None:
            return None
        new_cost, new_k, new_boundaries = best
        if new_k == current_k and np.array_equal(new_boundaries, current_boundaries):
            return None
        if old_cost / max(new_cost, 1.0) < self._config.min_gain:
            return None
        return LayoutProposal(
            boundaries=tuple(float(b) for b in new_boundaries),
            n_shards=int(new_k),
            old_cost=old_cost,
            new_cost=new_cost,
            n_queries=int(observed),
        )

    # ------------------------------------------------------------------
    # Persistence (format v7; see repro.io.persistence)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, np.ndarray]:
        """Flat float64 arrays capturing the monitor for an archive.

        Keys are prefixed with ``layout::`` by the persistence layer;
        :meth:`load_state` restores gracefully from any subset, so a
        pre-v7 archive (no layout arrays at all) loads an empty monitor.
        """
        with self._write_lock:
            lows = self._sketch_lows[: self._count]
            highs = self._sketch_highs[: self._count]
            return {
                "sketch": np.concatenate([lows, highs]).astype(np.float64),
                "counters": np.concatenate(
                    [self._hits, self._pruned, self._examined]
                ).astype(np.float64),
                "scalars": np.array(
                    [self._epoch, self._observed], dtype=np.float64
                ),
                "history_lengths": np.array(
                    [len(b) for b in self._history], dtype=np.float64
                ),
                "history_values": np.array(
                    [v for b in self._history for v in b], dtype=np.float64
                ),
            }

    def load_state(self, payload: Mapping[str, np.ndarray]) -> None:
        """Restore from :meth:`state` output (missing keys stay empty).

        Counters are restored only when their length matches the current
        shard count — an archive written under a different layout has
        nothing meaningful to say about today's shards.
        """
        with self._write_lock:
            scalars = payload.get("scalars")
            if scalars is not None and len(scalars) >= 2:
                self._epoch = int(scalars[0])
                self._observed = int(scalars[1])
            sketch = payload.get("sketch")
            if sketch is not None and len(sketch) % 2 == 0:
                half = len(sketch) // 2
                size = len(self._sketch_lows)
                keep = min(half, size)
                self._sketch_lows[:keep] = np.asarray(
                    sketch[half - keep : half], dtype=np.float64
                )
                self._sketch_highs[:keep] = np.asarray(
                    sketch[len(sketch) - keep :], dtype=np.float64
                )
                self._count = keep
                self._cursor = keep % size
            counters = payload.get("counters")
            if counters is not None and len(counters) == 3 * self._n_shards:
                k = self._n_shards
                self._hits = np.asarray(counters[:k], dtype=np.int64) + 0
                self._pruned = np.asarray(counters[k : 2 * k], dtype=np.int64) + 0
                self._examined = np.asarray(counters[2 * k :], dtype=np.int64) + 0
            lengths = payload.get("history_lengths")
            flat = payload.get("history_values")
            if lengths is not None and flat is not None:
                history: List[Tuple[float, ...]] = []
                offset = 0
                for length in np.asarray(lengths, dtype=np.int64):
                    history.append(
                        tuple(float(v) for v in flat[offset : offset + int(length)])
                    )
                    offset += int(length)
                self._history = history

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LayoutMonitor(epoch={self._epoch}, observed={self._observed}, "
            f"n_shards={self._n_shards})"
        )
