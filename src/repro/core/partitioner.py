"""Splitting data into the primary and the outlier set (Algorithm 1, final loop).

A record belongs to the primary index only when it falls inside the margin
band of *every* model of *every* FD group — otherwise a translated query
could miss it.  Records violating any margin go to the outlier index, which
indexes all attributes and therefore needs no dependency to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.data.table import Table
from repro.fd.groups import FDGroup, per_model_inlier_masks

__all__ = ["PartitionResult", "partition_rows"]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of the inlier/outlier split."""

    inlier_ids: np.ndarray
    outlier_ids: np.ndarray
    #: Per (predictor, dependent) pair: fraction of rows inside that model's margins.
    per_model_inlier_fraction: Dict[str, float]

    @property
    def n_rows(self) -> int:
        """Total number of partitioned rows."""
        return len(self.inlier_ids) + len(self.outlier_ids)

    @property
    def primary_ratio(self) -> float:
        """Fraction of rows retained by the primary index (Table 1's "Primary Index Ratio")."""
        total = self.n_rows
        return len(self.inlier_ids) / total if total else 0.0


def partition_rows(
    table: Table,
    groups: Sequence[FDGroup],
    *,
    row_ids: np.ndarray | None = None,
) -> PartitionResult:
    """Split ``table`` rows into inliers and outliers with respect to ``groups``.

    ``row_ids`` restricts the partition to a subset of the table (used by the
    incremental insert path); by default all rows are partitioned.  With no
    groups at all, every row is an inlier (COAX degenerates into its primary
    index over the full data).
    """
    if row_ids is None:
        row_ids = np.arange(table.n_rows, dtype=np.int64)
    else:
        row_ids = np.asarray(row_ids, dtype=np.int64)
    if len(row_ids) == 0:
        empty = np.empty(0, dtype=np.int64)
        return PartitionResult(empty, empty, {})

    needed = {attr for group in groups for attr in group.attributes}
    columns = {name: table.column(name)[row_ids] for name in needed}
    inlier_mask = np.ones(len(row_ids), dtype=bool)
    per_model: Dict[str, float] = {}
    for name, within in per_model_inlier_masks(groups, columns).items():
        per_model[name] = float(np.mean(within))
        inlier_mask &= within
    inlier_ids = row_ids[inlier_mask]
    outlier_ids = row_ids[~inlier_mask]
    return PartitionResult(
        inlier_ids=inlier_ids,
        outlier_ids=outlier_ids,
        per_model_inlier_fraction=per_model,
    )
