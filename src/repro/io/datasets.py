"""Loading and saving tables as CSV or ``.npz`` files.

The synthetic generators cover the reproduction, but a downstream user will
want to point COAX at their own data.  These helpers read a numeric CSV
(with a header row) or a NumPy archive into a :class:`~repro.data.table.Table`
and write tables back out.  Non-numeric CSV columns can either be skipped or
dictionary-encoded into float codes (COAX, like the paper's implementation,
indexes numeric attributes only).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.table import Table

__all__ = ["load_csv", "save_csv", "load_npz", "save_npz", "encode_categories"]

PathLike = Union[str, Path]


def load_csv(
    path: PathLike,
    *,
    columns: Optional[Sequence[str]] = None,
    encode_strings: bool = False,
    delimiter: str = ",",
    max_rows: Optional[int] = None,
) -> Tuple[Table, Dict[str, Dict[str, float]]]:
    """Read a CSV file with a header row into a table.

    ``columns`` restricts the load to a subset of header names.  Columns that
    fail to parse as floats are dictionary-encoded when ``encode_strings``
    is true (each distinct string maps to a float code) and skipped
    otherwise.  Returns the table and the per-column encoding dictionaries
    (empty for numeric columns).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ValueError(f"{path} is empty") from exc
        header = [name.strip() for name in header]
        wanted = list(columns) if columns is not None else header
        missing = [name for name in wanted if name not in header]
        if missing:
            raise KeyError(f"columns not present in {path.name}: {missing}")
        positions = [header.index(name) for name in wanted]
        raw: List[List[str]] = [[] for _ in wanted]
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if not row:
                continue
            for slot, position in enumerate(positions):
                raw[slot].append(row[position].strip() if position < len(row) else "")

    columns_out: Dict[str, np.ndarray] = {}
    encodings: Dict[str, Dict[str, float]] = {}
    for name, values in zip(wanted, raw):
        numeric, encoding = _parse_column(values, encode_strings=encode_strings)
        if numeric is None:
            continue
        columns_out[name] = numeric
        encodings[name] = encoding
    if not columns_out:
        raise ValueError(f"no numeric (or encodable) columns found in {path.name}")
    return Table(columns_out), encodings


def _parse_column(
    values: List[str], *, encode_strings: bool
) -> Tuple[Optional[np.ndarray], Dict[str, float]]:
    """Parse one CSV column; returns (array or None, encoding dict)."""
    try:
        parsed = np.array(
            [float(value) if value not in ("", "NA", "NaN", "null") else np.nan for value in values]
        )
        # Columns that are entirely missing are useless for indexing.
        if np.all(np.isnan(parsed)):
            return None, {}
        # Replace missing entries with the column mean so downstream indexes
        # never see NaN (which would break interval comparisons).
        if np.any(np.isnan(parsed)):
            parsed = np.where(np.isnan(parsed), np.nanmean(parsed), parsed)
        return parsed, {}
    except ValueError:
        if not encode_strings:
            return None, {}
        encoding = encode_categories(values)
        return np.array([encoding[value] for value in values], dtype=np.float64), encoding


def encode_categories(values: Sequence[str]) -> Dict[str, float]:
    """Stable dictionary encoding: distinct strings map to 0.0, 1.0, ..."""
    encoding: Dict[str, float] = {}
    for value in sorted(set(values)):
        encoding[value] = float(len(encoding))
    return encoding


def save_csv(table: Table, path: PathLike, *, delimiter: str = ",") -> Path:
    """Write a table to CSV with a header row."""
    path = Path(path)
    names = list(table.schema)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        matrix = table.to_matrix(names)
        for row in matrix:
            writer.writerow([repr(float(value)) for value in row])
    return path


def load_npz(path: PathLike) -> Table:
    """Load a table from a NumPy archive (one array per column)."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        columns = {name: archive[name] for name in archive.files}
    return Table(columns)


def save_npz(table: Table, path: PathLike) -> Path:
    """Save a table as a compressed NumPy archive (one array per column)."""
    path = Path(path)
    with path.open("wb") as handle:
        np.savez_compressed(handle, **{name: table.column(name) for name in table.schema})
    return path
