"""Saving and loading COAX indexes and sharded engines.

A COAX index is cheap to rebuild from its learned state: the FD groups (a
handful of model parameters per group), the configuration, and the data
itself.  Persistence therefore stores exactly that — the table columns, the
group definitions and the configuration — in a single ``.npz`` archive plus
an embedded JSON header, and reconstruction replays the build with the
stored groups (no re-detection), which is deterministic and fast.

The format is deliberately simple and versioned so it can be inspected with
nothing but NumPy:

* ``__meta__`` — JSON string: format version, configuration, group
  definitions (predictor, dependents, per-dependent model parameters), the
  schema order, the delta-store bookkeeping (pending count, next row id)
  and the live-row count;
* one array per table column, stored under ``column::<name>``;
* pending (inserted but not compacted) records under ``delta::<key>`` —
  one array per column plus the assigned row ids, the routing mask and the
  per-model margin masks — so a save/load round trip preserves the delta
  store instead of forcing a compaction (and restoring it never re-runs an
  FD model);
* the tombstone bitmap under ``__tombstone__`` (format version 3, only
  present when rows were deleted), one boolean per saved table row, so
  deleted-but-not-yet-compacted rows stay deleted across a round trip.

Format version 4 is the *sharded* archive written for a
:class:`~repro.core.engine.ShardedCOAX`: an engine-level header (shard
count, partitioning scheme and boundaries, worker count, the shared groups
and COAX configuration, the next global row id) plus one complete
per-shard section — every key of the flat format under a ``shard<j>::``
prefix, extended with ``shard<j>::__global_of__``, the local-position →
global-row-id half of the engine's mapping (the other half is derived on
load).  Each shard round-trips exactly like a flat index: its delta store,
tombstones and id coverage survive un-compacted.

Format version 5 (written for both layouts — flat archives without an
``engine`` header, sharded archives with one) adds the drift-monitor state
of adaptive model maintenance: when the saved index (or engine) carries a
:class:`~repro.fd.maintenance.MaintenanceManager`, one flat float64 state
vector per monitored model is stored under ``monitor::<name>`` — the two
Bayesian posteriors' sufficient statistics plus the outside-margin and
residual-drift counters — so a restored index resumes drift tracking
exactly where the saved one left off.  Archives without monitor sections
(maintenance disabled, or written by an older build) load with fresh
monitors, which is exactly the state of a newly built adaptive index.

Version 1 archives (no delta section) load fine: the delta store starts
empty, exactly the state version 1 guaranteed by compacting before save.
Version 2 archives (no tombstones, no per-model masks) also load; their
delta routing masks are trusted and the per-model masks re-derived once.
Version 3 (flat) and 4 (sharded) archives predate the maintenance
section and load with the models frozen, their historical behaviour.
:func:`load_engine` additionally wraps any flat archive into a 1-shard
engine, so engine deployments can adopt old flat archives directly.
Unsupported versions raise the typed :class:`UnsupportedFormatError`
carrying the supported-version list.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig, EngineConfig, MaintenanceConfig
from repro.core.engine import ShardedCOAX
from repro.data.table import Table
from repro.fd.detection import DetectionConfig
from repro.fd.bucketing import BucketingConfig
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel, SplineFDModel, SplineSegment

__all__ = [
    "save_index",
    "load_index",
    "load_engine",
    "UnsupportedFormatError",
    "FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
]

#: Version written for every archive (flat and sharded; the two layouts
#: are distinguished by the presence of the ``engine`` header section).
FORMAT_VERSION = 5

#: Deprecated alias: since format 5 the version number no longer
#: distinguishes the two layouts — check for the ``engine`` key in the
#: archive header instead (the rule every loader here uses).
SHARDED_FORMAT_VERSION = FORMAT_VERSION

#: Versions this build can read (2 added the delta-store section, 3 the
#: tombstone bitmap, the live-row count and the per-model routing masks,
#: 4 the sharded-engine archive, 5 the drift-monitor state of adaptive
#: model maintenance).
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5)


class UnsupportedFormatError(ValueError):
    """An archive declares a format version this build cannot read.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    handlers keep working; carries the offending and the supported
    versions as attributes for programmatic handling.
    """

    def __init__(self, version, supported=SUPPORTED_VERSIONS) -> None:
        self.version = version
        self.supported = tuple(supported)
        super().__init__(
            f"unsupported format version {version!r} "
            f"(this build reads versions {list(self.supported)})"
        )


def _model_to_dict(model) -> Dict:
    """Serialisable representation of a soft-FD model."""
    if isinstance(model, LinearFDModel):
        return {
            "kind": "linear",
            "slope": model.slope,
            "intercept": model.intercept,
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
        }
    if isinstance(model, SplineFDModel):
        return {
            "kind": "spline",
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
            "segments": [
                {
                    "x_low": segment.x_low,
                    "x_high": segment.x_high,
                    "slope": segment.slope,
                    "intercept": segment.intercept,
                }
                for segment in model.segments
            ],
        }
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _model_from_dict(payload: Dict):
    """Inverse of :func:`_model_to_dict`."""
    kind = payload.get("kind")
    if kind == "linear":
        return LinearFDModel(
            slope=float(payload["slope"]),
            intercept=float(payload["intercept"]),
            eps_lb=float(payload["eps_lb"]),
            eps_ub=float(payload["eps_ub"]),
        )
    if kind == "spline":
        segments = [
            SplineSegment(
                x_low=float(item["x_low"]),
                x_high=float(item["x_high"]),
                slope=float(item["slope"]),
                intercept=float(item["intercept"]),
            )
            for item in payload["segments"]
        ]
        return SplineFDModel(segments, eps_lb=float(payload["eps_lb"]), eps_ub=float(payload["eps_ub"]))
    raise ValueError(f"unknown model kind {kind!r}")


def _group_to_dict(group: FDGroup) -> Dict:
    return {
        "predictor": group.predictor,
        "dependents": list(group.dependents),
        "models": {name: _model_to_dict(model) for name, model in group.models.items()},
    }


def _group_from_dict(payload: Dict) -> FDGroup:
    return FDGroup(
        predictor=payload["predictor"],
        dependents=tuple(payload["dependents"]),
        models={name: _model_from_dict(model) for name, model in payload["models"].items()},
    )


def _config_to_dict(config: COAXConfig) -> Dict:
    """Nested-dataclass serialisation of the configuration."""
    payload = asdict(config)
    return payload


def _config_from_dict(payload: Dict) -> COAXConfig:
    detection_payload = dict(payload.get("detection", {}))
    bucketing_payload = dict(detection_payload.pop("bucketing", {}))
    detection = DetectionConfig(bucketing=BucketingConfig(**bucketing_payload), **detection_payload)
    # Archives written before format v5 carry no maintenance section; the
    # default (disabled) configuration is exactly their behaviour.
    maintenance = MaintenanceConfig(**dict(payload.get("maintenance", {})))
    remaining = {
        key: value
        for key, value in payload.items()
        if key not in ("detection", "maintenance")
    }
    return COAXConfig(detection=detection, maintenance=maintenance, **remaining)


def _index_payload(index: COAXIndex) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Flat-format ``(meta, arrays)`` of one COAX index (no file I/O).

    Shared by the flat save path and the per-shard sections of a sharded
    archive.  Only the covered rows are stored (dead table slots a
    reclaiming compaction left behind cost nothing on disk);
    ``__row_ids__`` records their original ids so loading can scatter them
    back to their table positions — row ids survive a round trip even for
    subset-scoped indexes, which format v2 had to fold-and-renumber
    instead.
    """
    table = index.table.take(index.row_ids)
    pending = index.n_pending > 0
    next_row_id = int(index.next_row_id)
    tombstone = index.tombstone_mask
    if tombstone is not None and not tombstone.any():
        tombstone = None
    n_tombstoned = int(tombstone.sum()) if tombstone is not None else 0
    meta = {
        "format_version": FORMAT_VERSION,
        "schema": list(table.schema),
        "dimensions": list(index.dimensions),
        "config": _config_to_dict(index.config),
        "groups": [_group_to_dict(group) for group in index.groups],
        "n_rows": table.n_rows,
        "n_pending": int(index.n_pending),
        "next_row_id": next_row_id,
        "n_tombstoned": n_tombstoned,
        "n_live": table.n_rows - n_tombstoned + int(index.n_pending),
    }
    arrays = {f"column::{name}": table.column(name) for name in table.schema}
    if not index.rows_aligned:
        arrays["__row_ids__"] = np.asarray(index.row_ids, dtype=np.int64)
    if pending:
        for key, array in index.delta.state().items():
            arrays[f"delta::{key}"] = array
    if tombstone is not None:
        arrays["__tombstone__"] = tombstone.copy()
    if index.maintenance is not None:
        # The monitor sections are self-describing (one ``monitor::<name>``
        # array per monitored model); no header field is needed.
        for name, state in index.maintenance.state().items():
            arrays[f"monitor::{name}"] = state
    return meta, arrays


def _restore_flat_index(meta: Dict, arrays: Mapping[str, np.ndarray]) -> COAXIndex:
    """Rebuild one COAX index from a flat-format ``(meta, arrays)`` pair."""
    columns = {name: arrays[f"column::{name}"] for name in meta["schema"]}
    delta_payload: Dict[str, np.ndarray] = {}
    if meta.get("n_pending"):
        prefix = "delta::"
        delta_payload = {
            key[len(prefix):]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
    tombstone = (
        np.asarray(arrays["__tombstone__"], dtype=bool)
        if "__tombstone__" in arrays
        else None
    )
    row_ids = (
        np.asarray(arrays["__row_ids__"], dtype=np.int64)
        if "__row_ids__" in arrays
        else None
    )
    groups: List[FDGroup] = [_group_from_dict(item) for item in meta["groups"]]
    config = _config_from_dict(meta["config"])
    if row_ids is None:
        # Aligned archive: saved order is table order, ids are 0..n-1.
        table = Table(columns)
        index = COAXIndex(
            table, config=config, groups=groups, dimensions=meta["dimensions"]
        )
    else:
        # Subset-scoped archive: scatter the saved rows back to their
        # original table positions (row id == position, the invariant the
        # whole update path relies on); the gaps are dead slots no row-id
        # set ever covers.
        size = int(row_ids.max()) + 1 if len(row_ids) else 0
        scattered = {}
        for name in meta["schema"]:
            column = np.full(size, np.nan)
            column[row_ids] = columns[name]
            scattered[name] = column
        table = Table(scattered)
        index = COAXIndex(
            table,
            config=config,
            groups=groups,
            row_ids=row_ids,
            dimensions=meta["dimensions"],
        )
    if tombstone is not None and tombstone.any():
        # The bitmap is positional over the saved coverage order; map it to
        # row ids and re-apply without triggering an auto-compaction
        # mid-load.
        covered = row_ids if row_ids is not None else np.arange(table.n_rows, dtype=np.int64)
        index._delete_main_rows(np.unique(covered[tombstone]))
    if delta_payload:
        index.delta.load_state(delta_payload)
    next_row_id = meta.get("next_row_id")
    if next_row_id is not None:
        index._next_row_id = int(next_row_id)
    _load_monitor_state(index.maintenance, arrays)
    return index


def _load_monitor_state(maintenance, arrays: Mapping[str, np.ndarray]) -> None:
    """Restore drift-monitor state from ``monitor::<name>`` arrays.

    Archives written before format v5 (or with maintenance disabled)
    simply carry no such arrays: the monitors then start fresh, exactly
    the state a newly built adaptive index has.
    """
    if maintenance is None:
        return
    prefix = "monitor::"
    payload = {
        key[len(prefix):]: array
        for key, array in arrays.items()
        if key.startswith(prefix)
    }
    if payload:
        maintenance.load_state(payload)


def save_index(
    index: Union[COAXIndex, ShardedCOAX], path: Union[str, Path]
) -> Path:
    """Persist an index (data + learned state + delta store) to ``path`` (.npz).

    Both layouts are written as format-5 archives: a plain
    :class:`COAXIndex` as a flat archive, a :class:`ShardedCOAX` engine
    as a sharded archive holding one complete flat section per shard plus
    the ``engine`` header and the global-id mapping.  Pending (inserted
    but not compacted) records are stored alongside the main columns with
    their assigned row ids and routing mask either way — and, when
    adaptive maintenance is enabled, the drift-monitor state — so loading
    restores the exact pre-save state.  Returns the path written.
    """
    path = Path(path)
    # The snapshot is assembled under the index's single-writer lock: a
    # mutation landing between two shard sections (or between a shard
    # section and its mapping array) would otherwise produce a torn
    # archive that fails — or worse, passes — validation on load.
    if isinstance(index, ShardedCOAX):
        with index.write_lock:
            engine_config = index.config
            shard_metas = []
            arrays: Dict[str, np.ndarray] = {}
            for shard_no, shard in enumerate(index.shards):
                shard_meta, shard_arrays = _index_payload(shard)
                shard_metas.append(shard_meta)
                prefix = f"shard{shard_no}::"
                for key, array in shard_arrays.items():
                    arrays[prefix + key] = array
                arrays[prefix + "__global_of__"] = np.asarray(
                    index._global_of[shard_no], dtype=np.int64
                )
            meta = {
                "format_version": SHARDED_FORMAT_VERSION,
                "engine": {
                    "n_shards": engine_config.n_shards,
                    "partitioning": engine_config.partitioning,
                    "partition_dimension": index.partition_dimension,
                    "workers": engine_config.workers,
                    "boundaries": [float(b) for b in index.shard_boundaries],
                    "dimensions": list(index.dimensions),
                    "config": _config_to_dict(engine_config.coax),
                    "groups": [_group_to_dict(group) for group in index.groups],
                    "next_global_id": int(index.next_row_id),
                },
                "shards": shard_metas,
            }
            if index.maintenance is not None:
                for name, state in index.maintenance.state().items():
                    arrays[f"monitor::{name}"] = state
    else:
        with index.write_lock:
            meta, arrays = _index_payload(index)
    arrays["__meta__"] = np.array(json.dumps(meta))
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def _restore_engine(
    meta: Dict,
    arrays: Mapping[str, np.ndarray],
    *,
    workers: Optional[int] = None,
) -> ShardedCOAX:
    """Rebuild a sharded engine from a sharded (format 4+) archive's contents."""
    engine_meta = meta["engine"]
    shards: List[COAXIndex] = []
    global_of: List[np.ndarray] = []
    for shard_no, shard_meta in enumerate(meta["shards"]):
        prefix = f"shard{shard_no}::"
        shard_arrays = {
            key[len(prefix):]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
        global_of.append(np.asarray(shard_arrays.pop("__global_of__"), dtype=np.int64))
        shards.append(_restore_flat_index(shard_meta, shard_arrays))
    config = EngineConfig(
        n_shards=int(engine_meta["n_shards"]),
        partitioning=engine_meta["partitioning"],
        partition_dimension=engine_meta.get("partition_dimension"),
        workers=int(workers if workers is not None else engine_meta.get("workers", 1)),
        coax=_config_from_dict(engine_meta["config"]),
    )
    groups = [_group_from_dict(item) for item in engine_meta["groups"]]
    engine = ShardedCOAX._from_shards(
        shards,
        config=config,
        groups=groups,
        dimensions=engine_meta["dimensions"],
        global_of=global_of,
        next_global_id=int(engine_meta["next_global_id"]),
        boundaries=np.asarray(engine_meta.get("boundaries", []), dtype=np.float64),
        partition_dimension=engine_meta.get("partition_dimension"),
    )
    _load_monitor_state(engine.maintenance, arrays)
    return engine


def _read_archive(path: Path) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Materialise an archive's header and arrays, validating the version."""
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a COAX index archive (missing __meta__)")
        meta = json.loads(str(archive["__meta__"]))
        version = meta.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise UnsupportedFormatError(version)
        arrays = {key: archive[key] for key in archive.files if key != "__meta__"}
    return meta, arrays


def load_index(path: Union[str, Path]) -> Union[COAXIndex, ShardedCOAX]:
    """Load an index previously written by :func:`save_index`.

    Flat archives (no ``engine`` header — every format 1–3 archive, and
    format-5 archives of a plain index) come back as a
    :class:`COAXIndex`; sharded archives (format 4+, ``engine`` header
    present) as a :class:`ShardedCOAX` engine (use :func:`load_engine` to
    always receive an engine).  The table is restored from the stored
    columns and each index is rebuilt with the stored groups and
    configuration (no re-detection), so the loaded index partitions and
    answers queries exactly like the saved one.  Pending delta-store
    records (format version 2+) are restored un-compacted — without
    re-evaluating any FD model when the archive carries the per-model
    masks (version 3+) — tombstoned rows (version 3+) come back deleted,
    ready for the next compaction to reclaim, and drift-monitor state
    (version 5) resumes exactly where it left off.  Unsupported versions
    raise :class:`UnsupportedFormatError`.
    """
    meta, arrays = _read_archive(Path(path))
    if "engine" in meta:
        return _restore_engine(meta, arrays)
    return _restore_flat_index(meta, arrays)


def load_engine(
    path: Union[str, Path], *, workers: Optional[int] = None
) -> ShardedCOAX:
    """Load any supported archive as a sharded engine.

    Sharded archives restore natively (``workers`` overrides the saved
    pool size — a deployment knob, not part of the data); flat archives
    are wrapped into a 1-shard engine whose shard is the loaded COAX
    index, so legacy archives adopt the engine API without conversion
    (an adaptive flat index's drift monitors are promoted to the engine,
    which coordinates every refresh from then on).
    """
    meta, arrays = _read_archive(Path(path))
    if "engine" in meta:
        engine = _restore_engine(meta, arrays, workers=workers)
    else:
        engine = ShardedCOAX.from_index(
            _restore_flat_index(meta, arrays), workers=workers or 1
        )
    return engine
