"""Saving and loading COAX indexes.

A COAX index is cheap to rebuild from its learned state: the FD groups (a
handful of model parameters per group), the configuration, and the data
itself.  Persistence therefore stores exactly that — the table columns, the
group definitions and the configuration — in a single ``.npz`` archive plus
an embedded JSON header, and reconstruction replays the build with the
stored groups (no re-detection), which is deterministic and fast.

The format is deliberately simple and versioned so it can be inspected with
nothing but NumPy:

* ``__meta__`` — JSON string: format version, configuration, group
  definitions (predictor, dependents, per-dependent model parameters), the
  schema order, and the delta-store bookkeeping (pending count, next row id);
* one array per table column, stored under ``column::<name>``;
* pending (inserted but not compacted) records under ``delta::<key>`` —
  one array per column plus the assigned row ids and routing mask — so a
  save/load round trip preserves the delta store instead of forcing a
  compaction.

Version 1 archives (no delta section) load fine: the delta store starts
empty, exactly the state version 1 guaranteed by compacting before save.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.coax import COAXIndex
from repro.core.config import COAXConfig
from repro.data.table import Table
from repro.fd.detection import DetectionConfig
from repro.fd.bucketing import BucketingConfig
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel, SplineFDModel, SplineSegment

__all__ = ["save_index", "load_index", "FORMAT_VERSION", "SUPPORTED_VERSIONS"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: Versions this build can read (2 added the delta-store section).
SUPPORTED_VERSIONS = (1, 2)


def _model_to_dict(model) -> Dict:
    """Serialisable representation of a soft-FD model."""
    if isinstance(model, LinearFDModel):
        return {
            "kind": "linear",
            "slope": model.slope,
            "intercept": model.intercept,
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
        }
    if isinstance(model, SplineFDModel):
        return {
            "kind": "spline",
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
            "segments": [
                {
                    "x_low": segment.x_low,
                    "x_high": segment.x_high,
                    "slope": segment.slope,
                    "intercept": segment.intercept,
                }
                for segment in model.segments
            ],
        }
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _model_from_dict(payload: Dict):
    """Inverse of :func:`_model_to_dict`."""
    kind = payload.get("kind")
    if kind == "linear":
        return LinearFDModel(
            slope=float(payload["slope"]),
            intercept=float(payload["intercept"]),
            eps_lb=float(payload["eps_lb"]),
            eps_ub=float(payload["eps_ub"]),
        )
    if kind == "spline":
        segments = [
            SplineSegment(
                x_low=float(item["x_low"]),
                x_high=float(item["x_high"]),
                slope=float(item["slope"]),
                intercept=float(item["intercept"]),
            )
            for item in payload["segments"]
        ]
        return SplineFDModel(segments, eps_lb=float(payload["eps_lb"]), eps_ub=float(payload["eps_ub"]))
    raise ValueError(f"unknown model kind {kind!r}")


def _group_to_dict(group: FDGroup) -> Dict:
    return {
        "predictor": group.predictor,
        "dependents": list(group.dependents),
        "models": {name: _model_to_dict(model) for name, model in group.models.items()},
    }


def _group_from_dict(payload: Dict) -> FDGroup:
    return FDGroup(
        predictor=payload["predictor"],
        dependents=tuple(payload["dependents"]),
        models={name: _model_from_dict(model) for name, model in payload["models"].items()},
    )


def _config_to_dict(config: COAXConfig) -> Dict:
    """Nested-dataclass serialisation of the configuration."""
    payload = asdict(config)
    return payload


def _config_from_dict(payload: Dict) -> COAXConfig:
    detection_payload = dict(payload.get("detection", {}))
    bucketing_payload = dict(detection_payload.pop("bucketing", {}))
    detection = DetectionConfig(bucketing=BucketingConfig(**bucketing_payload), **detection_payload)
    remaining = {key: value for key, value in payload.items() if key != "detection"}
    return COAXConfig(detection=detection, **remaining)


def save_index(index: COAXIndex, path: Union[str, Path]) -> Path:
    """Persist a COAX index (data + learned state + delta store) to ``path`` (.npz).

    Pending (inserted but not compacted) records are stored alongside the
    main columns with their assigned row ids and routing mask, so loading
    restores the exact pre-save state — including what is pending.
    Returns the path written.
    """
    path = Path(path)
    table = index.table.take(index.row_ids)
    pending = index.delta.pending_table() if index.n_pending else None
    next_row_id = int(index.next_row_id)
    if pending is not None and not index.rows_aligned:
        # A subset-scoped index renumbers its rows on save (take), which
        # would orphan the pending row ids; fold the pending rows into the
        # saved table instead (the same renumbering compact() applies).
        table = table.concat(pending)
        pending = None
        next_row_id = table.n_rows
    meta = {
        "format_version": FORMAT_VERSION,
        "schema": list(table.schema),
        "dimensions": list(index.dimensions),
        "config": _config_to_dict(index.config),
        "groups": [_group_to_dict(group) for group in index.groups],
        "n_rows": table.n_rows,
        "n_pending": int(pending.n_rows) if pending is not None else 0,
        "next_row_id": next_row_id,
    }
    arrays = {f"column::{name}": table.column(name) for name in table.schema}
    if pending is not None:
        for key, array in index.delta.state().items():
            arrays[f"delta::{key}"] = array
    arrays["__meta__"] = np.array(json.dumps(meta))
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_index(path: Union[str, Path]) -> COAXIndex:
    """Load a COAX index previously written by :func:`save_index`.

    The table is restored from the stored columns and the index is rebuilt
    with the stored groups and configuration (no re-detection), so the
    loaded index partitions and answers queries exactly like the saved one.
    Pending delta-store records (format version 2) are restored un-compacted.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a COAX index archive (missing __meta__)")
        meta = json.loads(str(archive["__meta__"]))
        version = meta.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported format version {version!r} "
                f"(this build reads {SUPPORTED_VERSIONS})"
            )
        columns = {name: archive[f"column::{name}"] for name in meta["schema"]}
        delta_payload: Dict[str, np.ndarray] = {}
        if meta.get("n_pending"):
            prefix = "delta::"
            delta_payload = {
                key[len(prefix):]: archive[key]
                for key in archive.files
                if key.startswith(prefix)
            }
    table = Table(columns)
    groups: List[FDGroup] = [_group_from_dict(item) for item in meta["groups"]]
    config = _config_from_dict(meta["config"])
    index = COAXIndex(table, config=config, groups=groups, dimensions=meta["dimensions"])
    if delta_payload:
        index.delta.load_state(delta_payload)
    next_row_id = meta.get("next_row_id")
    if next_row_id is not None:
        index._next_row_id = int(next_row_id)
    return index
