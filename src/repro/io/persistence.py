"""Saving and loading COAX indexes and sharded engines.

Since format version 6 an archive is a *directory* holding one raw
little-endian binary file per array plus a single ``manifest.json``:

* ``manifest.json`` — the JSON header (format version, configuration,
  group definitions, schema order, delta/tombstone bookkeeping, the
  structured-restore state described below and, for engines, the engine
  section) plus one entry per array mapping its logical key to its file,
  dtype and shape.  The manifest is written *last* and the whole
  directory is assembled under a temporary name and atomically renamed
  into place, so a reader either sees a complete archive or none at all
  — never a torn one;
* ``arrays/…`` — one file per array, raw little-endian values with no
  framing, so the files can be attached with ``np.memmap`` (copy-on-write
  mode) instead of being parsed and copied.  ``load_index`` /
  ``load_engine`` map every large numeric array: loading is O(metadata),
  page cache is shared between every process that maps the same archive,
  and tables larger than RAM stream through the query kernels on demand.

The logical array keys are those of the legacy ``.npz`` layout — one
table column per ``column::<name>``, pending records under
``delta::<key>``, the tombstone bitmap under ``__tombstone__``, covered
ids under ``__row_ids__`` for subset-scoped indexes, drift-monitor state
under ``monitor::<name>``, and one complete flat section per shard under
a ``shard<j>::`` prefix (plus ``shard<j>::__global_of__``) for engines —
extended with the *structured-restore* section that makes cold starts
O(metadata): the inlier/outlier partition (``partition::*``), and for the
primary and the (grid-backed) outlier index the quantile boundaries, the
(cell, sort-key) row permutation, the per-cell offsets and the gathered
column subsets (``primary::*`` / ``outlier::*``).  With that state a
load *reattaches* the saved structures verbatim instead of replaying the
build — no FD model is evaluated, nothing is re-sorted.  Indexes whose
state cannot be reattached (subset-scoped after a reclaiming compaction,
or non-grid outlier indexes) simply omit the section and are rebuilt
deterministically from the stored groups, exactly like pre-v6 archives.

Versions 1–5 are the single-``.npz`` layouts of earlier builds (v1 no
delta section, v2 delta without per-model masks, v3 tombstones + masks,
v4 the sharded archive, v5 drift-monitor state; see the git history for
the blow-by-blow).  They all keep loading through a conversion shim —
the loaders dispatch on *file* (npz, v1–v5) vs *directory with manifest*
(v6) — and saving a loaded index writes v6.  ``save_index(...,
layout="npz")`` still writes the v5 single-file layout for compatibility
tooling and benchmarks.  :func:`load_engine` wraps any flat archive into
a 1-shard engine; sharded archives remember the engine's ``workers`` and
``executor`` settings, and both can be overridden at load time (a
deployment knob, not part of the data).  Unsupported versions raise the
typed :class:`UnsupportedFormatError` carrying the supported-version
list.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.coax import COAXIndex
from repro.core.config import (
    COAXConfig,
    EngineConfig,
    EXECUTOR_CHOICES,
    LayoutConfig,
    MaintenanceConfig,
)
from repro.core.engine import ShardedCOAX
from repro.core.partitioner import PartitionResult
from repro.data.table import Table
from repro.fd.detection import DetectionConfig
from repro.fd.bucketing import BucketingConfig
from repro.fd.groups import FDGroup
from repro.fd.model import LinearFDModel, SplineFDModel, SplineSegment
from repro.indexes.grid_file import SortedCellGridIndex

__all__ = [
    "save_index",
    "load_index",
    "load_engine",
    "UnsupportedFormatError",
    "FORMAT_VERSION",
    "LEGACY_FORMAT_VERSION",
    "SHARDED_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
]

#: Version written for every archive (flat and sharded; the two layouts
#: are distinguished by the presence of the ``engine`` header section).
FORMAT_VERSION = 7

#: The single-file ``.npz`` layout still written by
#: ``save_index(..., layout="npz")`` for compatibility tooling.
LEGACY_FORMAT_VERSION = 5

#: Deprecated alias: since format 5 the version number no longer
#: distinguishes the flat and sharded layouts — check for the ``engine``
#: key in the archive header instead (the rule every loader here uses).
SHARDED_FORMAT_VERSION = FORMAT_VERSION

#: Versions this build can read (2 added the delta-store section, 3 the
#: tombstone bitmap, the live-row count and the per-model routing masks,
#: 4 the sharded-engine archive, 5 the drift-monitor state of adaptive
#: model maintenance, 6 the mmap-backed columnar directory layout with
#: structured O(metadata) restore, 7 the workload-adaptive layout state
#: of the sharded engine — ``layout::<name>`` arrays plus the layout
#: knobs/epoch in the ``engine`` header; pre-7 archives load with an
#: empty monitor).
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5, 6, 7)

#: Header file of a columnar (v6) archive directory; written last, so its
#: presence certifies the archive is complete.
MANIFEST_NAME = "manifest.json"

#: Subdirectory of a columnar archive holding the raw array files.
ARRAY_DIR = "arrays"

#: Numeric arrays at least this large are attached with ``np.memmap``
#: (copy-on-write) instead of being read eagerly; smaller ones are not
#: worth an open file descriptor.
MMAP_MIN_BYTES = 4096


class UnsupportedFormatError(ValueError):
    """An archive declares a format version this build cannot read.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    handlers keep working; carries the offending and the supported
    versions as attributes for programmatic handling.
    """

    def __init__(self, version, supported=SUPPORTED_VERSIONS) -> None:
        self.version = version
        self.supported = tuple(supported)
        super().__init__(
            f"unsupported format version {version!r} "
            f"(this build reads versions {list(self.supported)})"
        )


def _model_to_dict(model) -> Dict:
    """Serialisable representation of a soft-FD model."""
    if isinstance(model, LinearFDModel):
        return {
            "kind": "linear",
            "slope": model.slope,
            "intercept": model.intercept,
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
        }
    if isinstance(model, SplineFDModel):
        return {
            "kind": "spline",
            "eps_lb": model.eps_lb,
            "eps_ub": model.eps_ub,
            "segments": [
                {
                    "x_low": segment.x_low,
                    "x_high": segment.x_high,
                    "slope": segment.slope,
                    "intercept": segment.intercept,
                }
                for segment in model.segments
            ],
        }
    raise TypeError(f"cannot serialise model of type {type(model).__name__}")


def _model_from_dict(payload: Dict):
    """Inverse of :func:`_model_to_dict`."""
    kind = payload.get("kind")
    if kind == "linear":
        return LinearFDModel(
            slope=float(payload["slope"]),
            intercept=float(payload["intercept"]),
            eps_lb=float(payload["eps_lb"]),
            eps_ub=float(payload["eps_ub"]),
        )
    if kind == "spline":
        segments = [
            SplineSegment(
                x_low=float(item["x_low"]),
                x_high=float(item["x_high"]),
                slope=float(item["slope"]),
                intercept=float(item["intercept"]),
            )
            for item in payload["segments"]
        ]
        return SplineFDModel(segments, eps_lb=float(payload["eps_lb"]), eps_ub=float(payload["eps_ub"]))
    raise ValueError(f"unknown model kind {kind!r}")


def _group_to_dict(group: FDGroup) -> Dict:
    return {
        "predictor": group.predictor,
        "dependents": list(group.dependents),
        "models": {name: _model_to_dict(model) for name, model in group.models.items()},
    }


def _group_from_dict(payload: Dict) -> FDGroup:
    return FDGroup(
        predictor=payload["predictor"],
        dependents=tuple(payload["dependents"]),
        models={name: _model_from_dict(model) for name, model in payload["models"].items()},
    )


def _config_to_dict(config: COAXConfig) -> Dict:
    """Nested-dataclass serialisation of the configuration."""
    payload = asdict(config)
    return payload


def _config_from_dict(payload: Dict) -> COAXConfig:
    detection_payload = dict(payload.get("detection", {}))
    bucketing_payload = dict(detection_payload.pop("bucketing", {}))
    detection = DetectionConfig(bucketing=BucketingConfig(**bucketing_payload), **detection_payload)
    # Archives written before format v5 carry no maintenance section; the
    # default (disabled) configuration is exactly their behaviour.
    maintenance = MaintenanceConfig(**dict(payload.get("maintenance", {})))
    remaining = {
        key: value
        for key, value in payload.items()
        if key not in ("detection", "maintenance")
    }
    return COAXConfig(detection=detection, maintenance=maintenance, **remaining)


# ----------------------------------------------------------------------
# Structured-restore payload (format v6)
# ----------------------------------------------------------------------

def _box_to_json(box) -> Optional[List[Dict[str, float]]]:
    return None if box is None else [dict(box[0]), dict(box[1])]


def _box_from_json(payload) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    if payload is None:
        return None
    lows, highs = payload
    return (
        {name: float(value) for name, value in lows.items()},
        {name: float(value) for name, value in highs.items()},
    )


def _structured_eligible(index: COAXIndex) -> bool:
    """Whether the index's derived state can be reattached verbatim.

    Requires row id == table position (subset-scoped indexes left behind
    by a reclaiming compaction re-run the deterministic rebuild instead)
    and grid-file structures on both sides (the r-tree / uniform-grid
    outlier variants carry no stable persisted form).
    """
    return (
        index.rows_aligned
        and type(index._primary) is SortedCellGridIndex
        and type(index._outlier) is SortedCellGridIndex
    )


def _grid_payload(
    grid: SortedCellGridIndex, prefix: str, arrays: Dict[str, np.ndarray]
) -> Dict:
    """Store one grid's derived state under ``prefix::`` keys; return its meta."""
    for axis, boundary in enumerate(grid._boundaries):
        arrays[f"{prefix}::boundary{axis}"] = np.asarray(boundary, dtype=np.float64)
    arrays[f"{prefix}::row_order"] = grid._row_order
    arrays[f"{prefix}::offsets"] = grid._offsets
    arrays[f"{prefix}::sorted_keys"] = grid._sorted_keys
    for name in grid.table.schema:
        arrays[f"{prefix}::column::{name}"] = grid._columns[name]
    return {
        "dimensions": list(grid.dimensions),
        "sort_dimension": grid.sort_dimension,
        "cells_per_dim": int(grid._cells_per_dim),
        "n_axes": len(grid._boundaries),
        "axis_lows": [float(value) for value in grid._axis_lows],
        "axis_highs": [float(value) for value in grid._axis_highs],
    }


def _structured_payload(index: COAXIndex, arrays: Dict[str, np.ndarray]) -> Dict:
    """Meta + arrays of the O(metadata) restore state of an aligned index."""
    partition = index._partition
    arrays["partition::inlier_ids"] = np.asarray(partition.inlier_ids, dtype=np.int64)
    arrays["partition::outlier_ids"] = np.asarray(partition.outlier_ids, dtype=np.int64)
    return {
        "indexed_dims": list(index._indexed_dims),
        "predicted_dims": list(index._predicted_dims),
        "sort_dim": index._sort_dim,
        "per_model_inlier_fraction": {
            name: float(value)
            for name, value in partition.per_model_inlier_fraction.items()
        },
        "primary_box": _box_to_json(index._primary_box),
        "outlier_box": _box_to_json(index._outlier_box),
        "primary": _grid_payload(index._primary, "primary", arrays),
        "outlier": _grid_payload(index._outlier, "outlier", arrays),
        "warnings": list(index._report.warnings),
    }


def _restore_grid(
    table: Table,
    grid_meta: Dict,
    prefix: str,
    row_ids: np.ndarray,
    arrays: Mapping[str, np.ndarray],
) -> SortedCellGridIndex:
    """Reattach one grid from its ``prefix::`` arrays (inverse of
    :func:`_grid_payload`)."""
    columns = {
        name: arrays[f"{prefix}::column::{name}"] for name in table.schema
    }
    boundaries = [
        arrays[f"{prefix}::boundary{axis}"] for axis in range(int(grid_meta["n_axes"]))
    ]
    return SortedCellGridIndex._restore(
        table,
        row_ids=row_ids,
        columns=columns,
        dimensions=grid_meta["dimensions"],
        sort_dimension=grid_meta["sort_dimension"],
        cells_per_dim=int(grid_meta["cells_per_dim"]),
        boundaries=boundaries,
        axis_lows=grid_meta["axis_lows"],
        axis_highs=grid_meta["axis_highs"],
        row_order=arrays[f"{prefix}::row_order"],
        offsets=arrays[f"{prefix}::offsets"],
        sorted_keys=arrays[f"{prefix}::sorted_keys"],
    )


def _index_payload(
    index: COAXIndex, *, structured: bool = True
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Flat-format ``(meta, arrays)`` of one COAX index (no file I/O).

    Shared by the flat save path and the per-shard sections of a sharded
    archive.  Only the covered rows are stored (dead table slots a
    reclaiming compaction left behind cost nothing on disk);
    ``__row_ids__`` records their original ids so loading can scatter them
    back to their table positions — row ids survive a round trip even for
    subset-scoped indexes, which format v2 had to fold-and-renumber
    instead.  With ``structured`` (the columnar layout), eligible indexes
    additionally store their derived structures so loading reattaches
    instead of rebuilding.
    """
    aligned = index.rows_aligned
    table = index.table if aligned else index.table.take(index.row_ids)
    pending = index.n_pending > 0
    next_row_id = int(index.next_row_id)
    tombstone = index.tombstone_mask
    if tombstone is not None and not tombstone.any():
        tombstone = None
    n_tombstoned = int(tombstone.sum()) if tombstone is not None else 0
    meta = {
        "format_version": FORMAT_VERSION,
        "schema": list(table.schema),
        "dimensions": list(index.dimensions),
        "config": _config_to_dict(index.config),
        "groups": [_group_to_dict(group) for group in index.groups],
        "n_rows": table.n_rows,
        "n_pending": int(index.n_pending),
        "next_row_id": next_row_id,
        "n_tombstoned": n_tombstoned,
        "n_live": table.n_rows - n_tombstoned + int(index.n_pending),
    }
    arrays = {f"column::{name}": table.column(name) for name in table.schema}
    if not aligned:
        arrays["__row_ids__"] = np.asarray(index.row_ids, dtype=np.int64)
    if pending:
        for key, array in index.delta.state().items():
            arrays[f"delta::{key}"] = array
    if tombstone is not None:
        arrays["__tombstone__"] = tombstone.copy()
    if index.maintenance is not None:
        # The monitor sections are self-describing (one ``monitor::<name>``
        # array per monitored model); no header field is needed.
        for name, state in index.maintenance.state().items():
            arrays[f"monitor::{name}"] = state
    if structured and _structured_eligible(index):
        meta["structured"] = _structured_payload(index, arrays)
    return meta, arrays


def _strip_structured(meta: Dict, arrays: Dict[str, np.ndarray]) -> None:
    """Drop the v6+ sections for the legacy (v5) ``.npz`` layout."""
    meta.pop("structured", None)
    if "engine" in meta:
        meta["engine"].pop("layout", None)
    for key in [key for key in arrays if key.startswith("layout::")]:
        del arrays[key]
    for shard_meta in meta.get("shards", ()):
        shard_meta.pop("structured", None)
    structured_markers = ("partition::", "primary::", "outlier::")
    for key in [
        key
        for key in arrays
        if key.split("::", 1)[-1:] and any(
            key.split("shard", 1)[-1].split("::", 1)[-1].startswith(marker)
            if key.startswith("shard")
            else key.startswith(marker)
            for marker in structured_markers
        )
    ]:
        del arrays[key]


def _restore_structured_index(
    meta: Dict, arrays: Mapping[str, np.ndarray]
) -> COAXIndex:
    """Reattach an aligned index from its structured (v6) state."""
    state = meta["structured"]
    columns = {name: arrays[f"column::{name}"] for name in meta["schema"]}
    table = Table(columns)
    groups = [_group_from_dict(item) for item in meta["groups"]]
    config = _config_from_dict(meta["config"])
    # repro-lint: allow[materialize] dtype-preserving view of the archived id arrays: zero-copy on v6 mmap (already int64), copies only for legacy archives
    inlier_ids = np.asarray(arrays["partition::inlier_ids"], dtype=np.int64)
    # repro-lint: allow[materialize] dtype-preserving view of the archived id arrays: zero-copy on v6 mmap (already int64), copies only for legacy archives
    outlier_ids = np.asarray(arrays["partition::outlier_ids"], dtype=np.int64)
    partition = PartitionResult(
        inlier_ids=inlier_ids,
        outlier_ids=outlier_ids,
        per_model_inlier_fraction={
            name: float(value)
            for name, value in state["per_model_inlier_fraction"].items()
        },
    )
    primary = _restore_grid(table, state["primary"], "primary", inlier_ids, arrays)
    outlier = _restore_grid(table, state["outlier"], "outlier", outlier_ids, arrays)
    return COAXIndex._restore_structured(
        table,
        config=config,
        groups=groups,
        dimensions=meta["dimensions"],
        partition=partition,
        indexed_dims=state["indexed_dims"],
        predicted_dims=state["predicted_dims"],
        sort_dim=state["sort_dim"],
        primary=primary,
        outlier=outlier,
        primary_box=_box_from_json(state["primary_box"]),
        outlier_box=_box_from_json(state["outlier_box"]),
        report_warnings=state.get("warnings", ()),
    )


def _restore_flat_index(meta: Dict, arrays: Mapping[str, np.ndarray]) -> COAXIndex:
    """Rebuild one COAX index from a flat-format ``(meta, arrays)`` pair."""
    delta_payload: Dict[str, np.ndarray] = {}
    if meta.get("n_pending"):
        prefix = "delta::"
        delta_payload = {
            key[len(prefix):]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
    tombstone = (
        # repro-lint: allow[materialize] dtype-preserving view of the archived bitmask: zero-copy on v6 mmap (already bool)
        np.asarray(arrays["__tombstone__"], dtype=bool)
        if "__tombstone__" in arrays
        else None
    )
    if "structured" in meta:
        # Structured (v6) state: reattach the saved structures verbatim —
        # no model evaluation, no re-sort, O(metadata) plus the mapping.
        index = _restore_structured_index(meta, arrays)
        table = index.table
        row_ids = None
    else:
        columns = {name: arrays[f"column::{name}"] for name in meta["schema"]}
        row_ids = (
            # repro-lint: allow[materialize] dtype-preserving view of the archived id array: zero-copy on v6 mmap (already int64)
            np.asarray(arrays["__row_ids__"], dtype=np.int64)
            if "__row_ids__" in arrays
            else None
        )
        groups: List[FDGroup] = [_group_from_dict(item) for item in meta["groups"]]
        config = _config_from_dict(meta["config"])
        if row_ids is None:
            # Aligned archive: saved order is table order, ids are 0..n-1.
            table = Table(columns)
            index = COAXIndex(
                table, config=config, groups=groups, dimensions=meta["dimensions"]
            )
        else:
            # Subset-scoped archive: scatter the saved rows back to their
            # original table positions (row id == position, the invariant the
            # whole update path relies on); the gaps are dead slots no row-id
            # set ever covers.
            size = int(row_ids.max()) + 1 if len(row_ids) else 0
            scattered = {}
            for name in meta["schema"]:
                column = np.full(size, np.nan)
                column[row_ids] = columns[name]
                scattered[name] = column
            table = Table(scattered)
            index = COAXIndex(
                table,
                config=config,
                groups=groups,
                row_ids=row_ids,
                dimensions=meta["dimensions"],
            )
    if tombstone is not None and tombstone.any():
        # The bitmap is positional over the saved coverage order; map it to
        # row ids and re-apply without triggering an auto-compaction
        # mid-load.
        covered = row_ids if row_ids is not None else np.arange(table.n_rows, dtype=np.int64)
        index._delete_main_rows(np.unique(covered[tombstone]))
    if delta_payload:
        index.delta.load_state(delta_payload)
    next_row_id = meta.get("next_row_id")
    if next_row_id is not None:
        index._next_row_id = int(next_row_id)
    _load_monitor_state(index.maintenance, arrays)
    return index


def _load_monitor_state(maintenance, arrays: Mapping[str, np.ndarray]) -> None:
    """Restore drift-monitor state from ``monitor::<name>`` arrays.

    Archives written before format v5 (or with maintenance disabled)
    simply carry no such arrays: the monitors then start fresh, exactly
    the state a newly built adaptive index has.
    """
    if maintenance is None:
        return
    prefix = "monitor::"
    payload = {
        key[len(prefix):]: np.asarray(array)
        for key, array in arrays.items()
        if key.startswith(prefix)
    }
    if payload:
        maintenance.load_state(payload)


def _load_layout_state(monitor, arrays: Mapping[str, np.ndarray]) -> None:
    """Restore the layout monitor's sketch from ``layout::<name>`` arrays.

    Archives written before format v7 (or with adaptive layout disabled)
    carry no such arrays: the monitor then starts fresh — empty sketch,
    epoch 0 — exactly the state a newly built adaptive engine has.
    """
    if monitor is None:
        return
    prefix = "layout::"
    payload = {
        key[len(prefix):]: np.asarray(array)
        for key, array in arrays.items()
        if key.startswith(prefix)
    }
    if payload:
        monitor.load_state(payload)


# ----------------------------------------------------------------------
# On-disk layouts
# ----------------------------------------------------------------------

def _sanitize_key(key: str) -> str:
    """Filesystem-safe slug of a logical array key (uniqueness comes from
    the numbered prefix the writer adds, not from the slug)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:80]


def _swap_into_place(tmp: Path, path: Path) -> None:
    """Atomically promote the fully written ``tmp`` directory to ``path``.

    A pre-existing archive (directory or legacy file) is renamed aside
    first and removed after the swap, so at every instant ``path`` either
    does not exist or names a complete archive.  Readers that already
    attached the old files keep valid mappings — POSIX keeps the data
    alive until the last descriptor drops.
    """
    retired: Optional[Path] = None
    if path.exists():
        retired = path.parent / f".{path.name}.retired-{os.getpid()}"
        if retired.is_dir():
            shutil.rmtree(retired)
        elif retired.exists():
            retired.unlink()
        os.rename(path, retired)
    os.rename(tmp, path)
    if retired is not None:
        if retired.is_dir():
            shutil.rmtree(retired)
        else:
            retired.unlink()


def _write_columnar(meta: Dict, arrays: Dict[str, np.ndarray], path: Path) -> Path:
    """Write a v6 columnar archive directory (tmp dir + atomic rename)."""
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    (tmp / ARRAY_DIR).mkdir(parents=True)
    entries: Dict[str, Dict] = {}
    for number, (key, array) in enumerate(arrays.items()):
        array = np.asarray(array)
        dtype = array.dtype
        if dtype.byteorder == ">":
            dtype = dtype.newbyteorder("<")
            array = array.astype(dtype, copy=False)
        filename = f"{ARRAY_DIR}/{number:04d}_{_sanitize_key(key)}.bin"
        array.tofile(tmp / filename)
        entries[key] = {
            "file": filename,
            "dtype": dtype.str,
            "shape": list(array.shape),
        }
    manifest = {"meta": meta, "arrays": entries}
    # The manifest goes in last: its presence certifies every array file
    # before it is complete.
    (tmp / MANIFEST_NAME).write_text(json.dumps(manifest))
    _swap_into_place(tmp, path)
    return path


def _read_columnar(path: Path) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Attach a v6 columnar archive: parse the manifest, map the arrays."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(
            f"{path} is not a COAX index archive (missing {MANIFEST_NAME})"
        )
    manifest = json.loads(manifest_path.read_text())
    meta = manifest.get("meta")
    if not isinstance(meta, dict):
        raise ValueError(f"{path} is not a COAX index archive (malformed manifest)")
    version = meta.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise UnsupportedFormatError(version)
    arrays: Dict[str, np.ndarray] = {}
    for key, entry in manifest["arrays"].items():
        file = path / entry["file"]
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(dim) for dim in entry["shape"])
        n_items = int(np.prod(shape)) if shape else 1
        if n_items == 0:
            arrays[key] = np.empty(shape, dtype=dtype)
        elif dtype.kind in "fiu" and n_items * dtype.itemsize >= MMAP_MIN_BYTES:
            # Copy-on-write mapping: reads share the page cache across
            # every process attached to this archive; the rare in-place
            # array mutation (grid offset maintenance during an absorb)
            # dirties private pages without ever touching the file.
            arrays[key] = np.memmap(file, dtype=dtype, mode="c", shape=shape)
        else:
            arrays[key] = np.fromfile(file, dtype=dtype).reshape(shape)
    return meta, arrays


def _write_npz(meta: Dict, arrays: Dict[str, np.ndarray], path: Path) -> Path:
    """Write the legacy (v5) single-file ``.npz`` layout."""
    meta = dict(meta)
    arrays = dict(arrays)
    _strip_structured(meta, arrays)
    meta["format_version"] = LEGACY_FORMAT_VERSION
    arrays["__meta__"] = np.array(json.dumps(meta))
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def _build_archive(index: Union[COAXIndex, ShardedCOAX]) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Assemble the full ``(meta, arrays)`` snapshot of an index or engine.

    Taken under the single-writer lock: a mutation landing between two
    shard sections (or between a shard section and its mapping array)
    would otherwise produce a torn snapshot.
    """
    if isinstance(index, ShardedCOAX):
        with index.write_lock:
            engine_config = index.config
            shard_metas = []
            arrays: Dict[str, np.ndarray] = {}
            for shard_no, shard in enumerate(index.shards):
                shard_meta, shard_arrays = _index_payload(shard)
                shard_metas.append(shard_meta)
                prefix = f"shard{shard_no}::"
                for key, array in shard_arrays.items():
                    arrays[prefix + key] = array
                arrays[prefix + "__global_of__"] = np.asarray(
                    index._global_of[shard_no], dtype=np.int64
                )
            meta = {
                "format_version": FORMAT_VERSION,
                "engine": {
                    "n_shards": engine_config.n_shards,
                    "partitioning": engine_config.partitioning,
                    "partition_dimension": index.partition_dimension,
                    "workers": engine_config.workers,
                    "executor": engine_config.executor,
                    "boundaries": [float(b) for b in index.shard_boundaries],
                    "dimensions": list(index.dimensions),
                    "config": _config_to_dict(engine_config.coax),
                    "groups": [_group_to_dict(group) for group in index.groups],
                    "next_global_id": int(index.next_row_id),
                    # Format v7: the workload-adaptive layout knobs (the
                    # monitor's sketch rides along as ``layout::`` arrays).
                    "layout": asdict(engine_config.layout),
                },
                "shards": shard_metas,
            }
            if index.maintenance is not None:
                for name, state in index.maintenance.state().items():
                    arrays[f"monitor::{name}"] = state
            if index.layout is not None:
                for name, state in index.layout.state().items():
                    arrays[f"layout::{name}"] = state
    else:
        with index.write_lock:
            meta, arrays = _index_payload(index)
    return meta, arrays


def save_index(
    index: Union[COAXIndex, ShardedCOAX],
    path: Union[str, Path],
    *,
    layout: str = "columnar",
) -> Path:
    """Persist an index (data + learned state + delta store) to ``path``.

    The default ``layout="columnar"`` writes a format-6 archive
    *directory*: one raw little-endian file per column/array plus a
    ``manifest.json`` written last, assembled under a temporary name and
    atomically renamed into place so readers never observe a torn
    archive.  ``layout="npz"`` writes the legacy v5 single-file archive
    (no structured-restore section) for compatibility tooling.  Both
    layouts serve flat :class:`COAXIndex` and sharded :class:`ShardedCOAX`
    snapshots — pending records, tombstones and drift-monitor state
    included — so loading restores the exact pre-save state.  Returns the
    path written.
    """
    path = Path(path)
    if layout not in ("columnar", "npz"):
        raise ValueError(f"layout must be 'columnar' or 'npz', got {layout!r}")
    meta, arrays = _build_archive(index)
    if layout == "npz":
        return _write_npz(meta, arrays, path)
    return _write_columnar(meta, arrays, path)


def _restore_engine(
    meta: Dict,
    arrays: Mapping[str, np.ndarray],
    *,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> ShardedCOAX:
    """Rebuild a sharded engine from a sharded (format 4+) archive's contents."""
    engine_meta = meta["engine"]
    shards: List[COAXIndex] = []
    global_of: List[np.ndarray] = []
    for shard_no, shard_meta in enumerate(meta["shards"]):
        prefix = f"shard{shard_no}::"
        shard_arrays = {
            key[len(prefix):]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
        # repro-lint: allow[materialize] dtype-preserving view of the archived id array: zero-copy on v6 mmap (already int64)
        global_of.append(np.asarray(shard_arrays.pop("__global_of__"), dtype=np.int64))
        shards.append(_restore_flat_index(shard_meta, shard_arrays))
    config = EngineConfig(
        n_shards=int(engine_meta["n_shards"]),
        partitioning=engine_meta["partitioning"],
        partition_dimension=engine_meta.get("partition_dimension"),
        workers=int(workers if workers is not None else engine_meta.get("workers", 1)),
        executor=executor if executor is not None else engine_meta.get("executor", "thread"),
        coax=_config_from_dict(engine_meta["config"]),
        # Archives written before format v7 carry no layout section; the
        # default (disabled) configuration is exactly their behaviour.
        layout=LayoutConfig(**dict(engine_meta.get("layout", {}))),
    )
    groups = [_group_from_dict(item) for item in engine_meta["groups"]]
    engine = ShardedCOAX._from_shards(
        shards,
        config=config,
        groups=groups,
        dimensions=engine_meta["dimensions"],
        global_of=global_of,
        next_global_id=int(engine_meta["next_global_id"]),
        boundaries=np.asarray(engine_meta.get("boundaries", []), dtype=np.float64),
        partition_dimension=engine_meta.get("partition_dimension"),
    )
    _load_monitor_state(engine.maintenance, arrays)
    _load_layout_state(engine.layout, arrays)
    return engine


def _read_archive(path: Path) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Attach an archive's header and arrays, validating the version.

    Dispatches on the path kind: a directory is the columnar (v6) layout
    — arrays come back memmap-attached; a file is a legacy (v1–v5)
    ``.npz`` — arrays are materialised, the conversion shim for every
    older format.
    """
    if path.is_dir():
        return _read_columnar(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a COAX index archive (missing __meta__)")
        meta = json.loads(str(archive["__meta__"]))
        version = meta.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise UnsupportedFormatError(version)
        arrays = {key: archive[key] for key in archive.files if key != "__meta__"}
    return meta, arrays


def load_index(path: Union[str, Path]) -> Union[COAXIndex, ShardedCOAX]:
    """Load an index previously written by :func:`save_index`.

    Flat archives (no ``engine`` header) come back as a
    :class:`COAXIndex`; sharded archives (``engine`` header present) as a
    :class:`ShardedCOAX` engine (use :func:`load_engine` to always
    receive an engine).  Columnar (v6) archives attach their arrays with
    copy-on-write ``np.memmap`` and *reattach* the saved structures when
    the structured section is present — O(metadata) cold start, no model
    evaluation, page cache shared across processes; other archives are
    rebuilt deterministically with the stored groups and configuration
    (no re-detection), so the loaded index partitions and answers queries
    exactly like the saved one either way.  Pending delta-store records
    are restored un-compacted — without re-evaluating any FD model when
    the archive carries the per-model masks (version 3+) — tombstoned
    rows come back deleted, ready for the next compaction to reclaim, and
    drift-monitor state (version 5+) resumes exactly where it left off.
    Unsupported versions raise :class:`UnsupportedFormatError`.
    """
    meta, arrays = _read_archive(Path(path))
    if "engine" in meta:
        return _restore_engine(meta, arrays)
    return _restore_flat_index(meta, arrays)


def load_engine(
    path: Union[str, Path],
    *,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> ShardedCOAX:
    """Load any supported archive as a sharded engine.

    Sharded archives restore natively; flat archives are wrapped into a
    1-shard engine whose shard is the loaded COAX index, so legacy
    archives adopt the engine API without conversion (an adaptive flat
    index's drift monitors are promoted to the engine, which coordinates
    every refresh from then on).  ``workers`` and ``executor`` override
    the saved pool size and scatter backend — deployment knobs, not part
    of the data; a sharded archive remembers both, but a load-time
    override always wins.
    """
    if executor is not None and executor not in EXECUTOR_CHOICES:
        raise ValueError(
            f"executor must be one of {EXECUTOR_CHOICES}, got {executor!r}"
        )
    meta, arrays = _read_archive(Path(path))
    if "engine" in meta:
        engine = _restore_engine(meta, arrays, workers=workers, executor=executor)
    else:
        engine = ShardedCOAX.from_index(
            _restore_flat_index(meta, arrays),
            workers=workers or 1,
            executor=executor or "thread",
        )
    return engine
