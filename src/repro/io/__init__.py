"""Persistence and data import/export.

* :mod:`repro.io.persistence` — save and load COAX indexes (models, margins,
  partition and configuration) so an index built offline can be shipped next
  to the data it covers.
* :mod:`repro.io.datasets` — load and store tables as CSV or ``.npz`` files,
  with schema inference for CSV headers.
"""

from repro.io.persistence import (
    UnsupportedFormatError,
    load_engine,
    load_index,
    save_index,
)
from repro.io.datasets import load_csv, load_npz, save_csv, save_npz

__all__ = [
    "save_index",
    "load_index",
    "load_engine",
    "UnsupportedFormatError",
    "load_csv",
    "save_csv",
    "load_npz",
    "save_npz",
]
